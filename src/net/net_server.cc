#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/runner.h"
#include "net/protocol.h"
#include "net/request_reader.h"

namespace rcj {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

NetServer::NetServer(ShardRouter* router, NetServerOptions options)
    : router_(router), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError(Errno("socket"));
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status = Status::IoError(Errno("bind"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status status = Status::IoError(Errno("listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) != 0) {
    const Status status = Status::IoError(Errno("getsockname"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NetServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // Unblock every connection: cancel its query (the engine drops the
  // remaining work at the next delivery) and shut the socket down so reads
  // and writes in the handler return immediately.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections = connections_;
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket.Cancel();
    if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    connections_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  started_ = false;
}

NetServer::Counters NetServer::counters() const {
  Counters counters;
  counters.connections = connections_count_.load(std::memory_order_relaxed);
  counters.ok = ok_count_.load(std::memory_order_relaxed);
  counters.rejected = rejected_count_.load(std::memory_order_relaxed);
  counters.shed = shed_count_.load(std::memory_order_relaxed);
  counters.cancelled = cancelled_count_.load(std::memory_order_relaxed);
  counters.failed = failed_count_.load(std::memory_order_relaxed);
  counters.stats = stats_count_.load(std::memory_order_relaxed);
  counters.mutations = mutations_count_.load(std::memory_order_relaxed);
  return counters;
}

void NetServer::ReapFinishedConnections() {
  // Swap-remove keeps connections_[i] and threads_[i] paired. Joining a
  // finished handler returns immediately, but still happens outside the
  // lock so a slow exit never blocks Submit-path accounting.
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t i = 0;
    while (i < connections_.size()) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(threads_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
        threads_[i] = std::move(threads_.back());
        threads_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (std::thread& thread : finished) thread.join();
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    bool saturated;
    {
      std::lock_guard<std::mutex> lock(mu_);
      saturated = connections_.size() >= options_.max_connections;
    }
    if (saturated) {
      // Let peers queue in the kernel backlog until a handler finishes,
      // instead of growing the thread count without bound.
      poll(nullptr, 0, 20);
      continue;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.send_buffer_bytes > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
    }
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    connections_.push_back(connection);
    threads_.emplace_back(
        [this, connection] { HandleConnection(connection.get()); });
  }
}

void NetServer::HandleStats(SocketSink* sink) {
  stats_count_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<ShardStatus> stats = router_->Stats();
  sink->SendLine("OK");
  for (const ShardStatus& shard : stats) {
    net::WireShardStats wire;
    wire.shard = shard.shard;
    wire.environments = shard.environments;
    wire.queued = shard.queued;
    wire.inflight = shard.counters.inflight;
    wire.submitted = shard.counters.submitted;
    wire.admitted = shard.counters.admitted;
    wire.shed = shard.counters.shed;
    wire.completed = shard.counters.completed;
    wire.cancelled = shard.counters.cancelled;
    wire.failed = shard.counters.failed;
    sink->SendLine(net::FormatShardStatsLine(wire));
  }
  const std::vector<EnvironmentStatus> envs = router_->EnvStats();
  for (const EnvironmentStatus& env : envs) {
    net::WireEnvStats wire;
    wire.name = env.name;
    wire.shard = env.shard;
    wire.live = env.live;
    wire.generation = env.stats.generation;
    wire.epoch = env.stats.epoch;
    wire.delta = env.stats.delta_size;
    wire.tombstones = env.stats.tombstones;
    wire.compactions = env.stats.compactions;
    wire.base_q = env.stats.base_q;
    wire.base_p = env.stats.base_p;
    sink->SendLine(net::FormatEnvStatsLine(wire));
  }
  sink->SendLine(net::FormatStatsEndLine(stats.size(), envs.size()));
  sink->Flush(options_.sink.drain_grace_ms);
}

bool NetServer::HandleMutation(SocketSink* sink, const std::string& line) {
  net::WireMutation mutation;
  Status status = net::ParseMutationLine(line, &mutation);
  LiveStats after;
  if (status.ok()) {
    switch (mutation.op) {
      case net::WireMutationOp::kInsert:
        status = router_->Insert(mutation.env_name, mutation.side,
                                 mutation.rec, &after);
        break;
      case net::WireMutationOp::kDelete:
        status = router_->Delete(mutation.env_name, mutation.side,
                                 mutation.rec.id, &after);
        break;
      case net::WireMutationOp::kCompact:
        status = router_->Compact(mutation.env_name, &after);
        break;
    }
  }
  if (!status.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return false;
  }
  mutations_count_.fetch_add(1, std::memory_order_relaxed);
  net::WireMutationAck ack;
  ack.op = mutation.op;
  ack.env_name = mutation.env_name;
  ack.epoch = after.epoch;
  ack.generation = after.generation;
  ack.delta = after.delta_size;
  ack.tombstones = after.tombstones;
  ack.compactions = after.compactions;
  sink->SendLine("OK");
  sink->SendLine(net::FormatMutationAckLine(ack));
  sink->Flush(options_.sink.drain_grace_ms);
  return true;
}

void NetServer::HandleMutations(int fd, SocketSink* sink, std::string line,
                                std::string* carry) {
  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms};
  while (HandleMutation(sink, line)) {
    bool clean_eof = false;
    const Status status = net::ReadRequestLine(fd, read_options, &stop_,
                                               carry, &line, &clean_eof);
    if (!status.ok()) {
      // A clean close (or an idle timeout with no partial line pending)
      // simply ends the batch; a half-delivered line is a real error.
      if (!clean_eof && !line.empty()) {
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        sink->SendLine(net::FormatErrLine(status));
        sink->Flush(options_.sink.drain_grace_ms);
      }
      return;
    }
    if (!net::IsMutationRequestLine(line)) {
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      sink->SendLine(net::FormatErrLine(Status::InvalidArgument(
          "only mutation requests may follow a mutation on one "
          "connection")));
      sink->Flush(options_.sink.drain_grace_ms);
      return;
    }
  }
}

void NetServer::HandleConnection(Connection* connection) {
  const int fd = connection->fd;
  // The sink's death (peer gone, or backpressure past the grace) pulls the
  // same cancellation hook a client drop does — from inside the failing
  // Emit(), before it returns false — so the service resolves the query as
  // Cancelled and the admission ledger classifies it exactly as the wire
  // reported it. A death that lands before the ticket is stored is caught
  // by the self-cancel after the store (the connection mutex orders the
  // two, mirroring the Stop() pattern).
  SocketSink sink(fd, options_.sink, [connection] {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket.Cancel();  // no-op until the ticket is stored
    connection->sink_died = true;
  });

  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms};
  std::string carry;
  std::string line;
  Status status =
      net::ReadRequestLine(fd, read_options, &stop_, &carry, &line);
  if (status.ok() && net::IsStatsRequestLine(line)) {
    HandleStats(&sink);
  } else if (status.ok() && net::IsMutationRequestLine(line)) {
    HandleMutations(fd, &sink, std::move(line), &carry);
  } else {
    HandleQuery(connection, &sink, status, line);
  }

  {
    std::lock_guard<std::mutex> lock(connection->mu);
    close(fd);
    connection->fd = -1;
  }
  connection->done.store(true, std::memory_order_release);
}

void NetServer::HandleQuery(Connection* connection, SocketSink* sink,
                            Status status, const std::string& line) {
  const int fd = connection->fd;
  net::WireRequest request;
  if (status.ok()) status = net::ParseRequestLine(line, &request);
  // Name resolution, environment binding (a live environment binds a
  // pinned snapshot), and spec validation all happen inside Submit,
  // before admission — a malformed spec is a rejection (ERR before OK),
  // never a started query.
  QueryTicket ticket;
  if (status.ok()) {
    // The router decides admission synchronously; on_admit puts the OK
    // acknowledgement on the wire before the query can emit its first
    // PAIR, preserving the frame order with zero buffering tricks.
    status = router_->Submit(request.env_name, request.spec, sink, &ticket,
                             [sink] { sink->SendLine("OK"); });
  }

  if (!status.ok()) {
    if (status.code() == StatusCode::kOverloaded) {
      shed_count_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
    }
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return;
  }

  bool sink_died_early;
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket = ticket;
    sink_died_early = connection->sink_died;
  }
  // Close the Stop() (and early sink-death) race: if the cancel pass ran
  // before the ticket was stored above, it cancelled an invalid (no-op)
  // ticket — but then its flag was already set, so self-cancel here.
  // Either interleaving cancels the real ticket (the connection mutex
  // orders the two).
  if (sink_died_early || stop_.load(std::memory_order_relaxed)) {
    ticket.Cancel();
  }

  // Babysit the in-flight query: resolve the ticket while watching the
  // socket's read side. A read *error* (ECONNRESET: the peer vanished
  // with data in flight) cancels the query — the service stops delivery
  // at the next pair, so the other connections' joins keep their
  // workers. A plain EOF is NOT a cancellation: a netcat-style client
  // legitimately half-closes its write side after the request while it
  // keeps reading, so EOF only means "done sending" — a peer that truly
  // closed is caught by the sink's failing sends instead.
  Status final;
  bool peer_gone = false;
  bool read_side_open = true;
  while (!ticket.TryGet(&final)) {
    if (!read_side_open) {
      final = ticket.Wait();  // sink death / Stop() resolve the ticket
      break;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 20);
    if (ready <= 0) continue;
    char buffer[256];
    const ssize_t got = recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (got > 0) continue;  // stray bytes: one request per connection
    if (got < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    if (got == 0) {
      read_side_open = false;  // half-close: keep streaming
    } else {
      peer_gone = true;  // hard error: the peer is gone
      ticket.Cancel();
      read_side_open = false;
    }
  }

  if (final.ok() && !sink->dead()) {
    net::WireSummary summary;
    summary.pairs = sink->emitted();
    summary.stats = ticket.stats();
    sink->SendLine(net::FormatEndLine(summary));
    if (sink->Flush(options_.sink.drain_grace_ms)) {
      ok_count_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cancelled_count_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (final.code() == StatusCode::kCancelled || sink->dead() ||
             peer_gone) {
    cancelled_count_.fetch_add(1, std::memory_order_relaxed);
    sink->SendLine(net::FormatErrLine(
        Status::Cancelled("stream cancelled before completion")));
    sink->Flush(options_.sink.drain_grace_ms);
  } else {
    failed_count_.fetch_add(1, std::memory_order_relaxed);
    sink->SendLine(net::FormatErrLine(final));
    sink->Flush(options_.sink.drain_grace_ms);
  }
}

}  // namespace rcj
