#include "net/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <utility>

#include "common/failpoint.h"
#include "core/runner.h"
#include "net/protocol.h"
#include "net/request_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rcj {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Registry mirrors of the server's connection-outcome counters, plus the
/// wire-volume counters only the sinks know (bytes to the kernel, pairs
/// delivered, backpressure stalls) and the gauges the snapshot thread
/// refreshes.
struct ServerMetrics {
  obs::Counter* connections;
  obs::Counter* ok;
  obs::Counter* rejected;
  obs::Counter* shed;
  obs::Counter* cancelled;
  obs::Counter* failed;
  obs::Counter* stats;
  obs::Counter* mutations;
  obs::Counter* metrics_scrapes;
  obs::Counter* expired;
  obs::Counter* idle_closed;
  obs::Counter* epochs;
  obs::Counter* bytes_sent;
  obs::Counter* pairs_sent;
  obs::Counter* backpressure_stalls;
  obs::Gauge* active_connections;
  obs::Gauge* shards_queued;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      ServerMetrics m;
      m.connections = registry.counter("rcj_server_connections_total");
      m.ok = registry.counter("rcj_server_ok_total");
      m.rejected = registry.counter("rcj_server_rejected_total");
      m.shed = registry.counter("rcj_server_shed_total");
      m.cancelled = registry.counter("rcj_server_cancelled_total");
      m.failed = registry.counter("rcj_server_failed_total");
      m.stats = registry.counter("rcj_server_stats_total");
      m.mutations = registry.counter("rcj_server_mutations_total");
      m.metrics_scrapes = registry.counter("rcj_server_metrics_total");
      m.expired = registry.counter("rcj_server_expired_total");
      m.idle_closed = registry.counter("rcj_server_idle_closed_total");
      m.epochs = registry.counter("rcj_server_epochs_total");
      m.bytes_sent = registry.counter("rcj_server_bytes_sent_total");
      m.pairs_sent = registry.counter("rcj_server_pairs_total");
      m.backpressure_stalls =
          registry.counter("rcj_server_backpressure_stalls_total");
      m.active_connections = registry.gauge("rcj_server_active_connections");
      m.shards_queued = registry.gauge("rcj_server_shards_queued");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

NetServer::NetServer(ShardRouter* router, NetServerOptions options)
    : router_(router), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError(Errno("socket"));
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status = Status::IoError(Errno("bind"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status status = Status::IoError(Errno("listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) != 0) {
    const Status status = Status::IoError(Errno("getsockname"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  // The slow-query log is process-wide; only a non-negative threshold
  // reconfigures it, so embedding several servers (tests, the fleet's
  // in-process backends) composes without clobbering.
  if (options_.slow_query_ms >= 0) {
    obs::MetricsRegistry::Default().slow_log()->Configure(
        options_.slow_query_ms / 1000.0);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.metrics_snapshot_ms > 0) {
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  return Status::OK();
}

void NetServer::SnapshotLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(snapshot_mu_);
      snapshot_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.metrics_snapshot_ms),
          [this] { return stop_.load(std::memory_order_relaxed); });
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    uint64_t queued = 0;
    for (const ShardStatus& shard : router_->Stats()) {
      queued += shard.queued;
    }
    ServerMetrics::Get().shards_queued->Set(static_cast<int64_t>(queued));
    size_t active;
    {
      std::lock_guard<std::mutex> lock(mu_);
      active = connections_.size();
    }
    ServerMetrics::Get().active_connections->Set(
        static_cast<int64_t>(active));
  }
}

void NetServer::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // Unblock every connection: cancel its query (the engine drops the
  // remaining work at the next delivery) and shut the socket down so reads
  // and writes in the handler return immediately.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections = connections_;
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket.Cancel();
    if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    connections_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  started_ = false;
}

NetServer::Counters NetServer::counters() const {
  Counters counters;
  counters.connections = connections_count_.load(std::memory_order_relaxed);
  counters.ok = ok_count_.load(std::memory_order_relaxed);
  counters.rejected = rejected_count_.load(std::memory_order_relaxed);
  counters.shed = shed_count_.load(std::memory_order_relaxed);
  counters.cancelled = cancelled_count_.load(std::memory_order_relaxed);
  counters.failed = failed_count_.load(std::memory_order_relaxed);
  counters.stats = stats_count_.load(std::memory_order_relaxed);
  counters.mutations = mutations_count_.load(std::memory_order_relaxed);
  counters.metrics = metrics_count_.load(std::memory_order_relaxed);
  counters.expired = expired_count_.load(std::memory_order_relaxed);
  counters.idle_closed = idle_closed_count_.load(std::memory_order_relaxed);
  counters.epochs = epochs_count_.load(std::memory_order_relaxed);
  return counters;
}

void NetServer::ReapFinishedConnections() {
  // Swap-remove keeps connections_[i] and threads_[i] paired. Joining a
  // finished handler returns immediately, but still happens outside the
  // lock so a slow exit never blocks Submit-path accounting.
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t i = 0;
    while (i < connections_.size()) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(threads_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
        threads_[i] = std::move(threads_.back());
        threads_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (std::thread& thread : finished) thread.join();
}

void NetServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    bool saturated;
    {
      std::lock_guard<std::mutex> lock(mu_);
      saturated = connections_.size() >= options_.max_connections;
    }
    if (saturated) {
      // Let peers queue in the kernel backlog until a handler finishes,
      // instead of growing the thread count without bound.
      poll(nullptr, 0, 20);
      continue;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.send_buffer_bytes > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                 sizeof(options_.send_buffer_bytes));
    }
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().connections->Add();
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    connections_.push_back(connection);
    threads_.emplace_back(
        [this, connection] { HandleConnection(connection.get()); });
  }
}

void NetServer::HandleStats(SocketSink* sink) {
  stats_count_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().stats->Add();
  const std::vector<ShardStatus> stats = router_->Stats();
  sink->SendLine("OK");
  for (const ShardStatus& shard : stats) {
    net::WireShardStats wire;
    wire.shard = shard.shard;
    wire.environments = shard.environments;
    wire.queued = shard.queued;
    wire.inflight = shard.counters.inflight;
    wire.submitted = shard.counters.submitted;
    wire.admitted = shard.counters.admitted;
    wire.shed = shard.counters.shed;
    wire.completed = shard.counters.completed;
    wire.cancelled = shard.counters.cancelled;
    wire.failed = shard.counters.failed;
    sink->SendLine(net::FormatShardStatsLine(wire));
  }
  const std::vector<EnvironmentStatus> envs = router_->EnvStats();
  for (const EnvironmentStatus& env : envs) {
    net::WireEnvStats wire;
    wire.name = env.name;
    wire.shard = env.shard;
    wire.live = env.live;
    wire.generation = env.stats.generation;
    wire.epoch = env.stats.epoch;
    wire.delta = env.stats.delta_size;
    wire.tombstones = env.stats.tombstones;
    wire.compactions = env.stats.compactions;
    wire.base_q = env.stats.base_q;
    wire.base_p = env.stats.base_p;
    sink->SendLine(net::FormatEnvStatsLine(wire));
  }
  sink->SendLine(net::FormatStatsEndLine(stats.size(), envs.size()));
  sink->Flush(options_.sink.drain_grace_ms);
}

void NetServer::HandleMetrics(SocketSink* sink) {
  metrics_count_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().metrics_scrapes->Add();
  const std::string exposition =
      obs::MetricsRegistry::Default().RenderPrometheus();
  // Split the newline-terminated exposition into wire lines; ENDMETRICS
  // carries the count so a client can read the block without sniffing.
  std::vector<std::string> lines;
  size_t begin = 0;
  while (begin < exposition.size()) {
    size_t end = exposition.find('\n', begin);
    if (end == std::string::npos) end = exposition.size();
    lines.push_back(exposition.substr(begin, end - begin));
    begin = end + 1;
  }
  sink->SendLine("OK");
  for (const std::string& line : lines) sink->SendLine(line);
  sink->SendLine(net::FormatMetricsEndLine(lines.size()));
  sink->Flush(options_.sink.drain_grace_ms);
}

void NetServer::HandleEpoch(SocketSink* sink, const std::string& line) {
  std::string env_name;
  Status status = net::ParseEpochRequestLine(line, &env_name);
  uint64_t epoch = 0;
  if (status.ok()) {
    bool found = false;
    for (const EnvironmentStatus& env : router_->EnvStats()) {
      if (env.name == env_name) {
        epoch = env.stats.epoch;
        found = true;
        break;
      }
    }
    if (!found) {
      status = Status::NotFound("unknown environment '" + env_name + "'");
    }
  }
  if (!status.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().rejected->Add();
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return;
  }
  epochs_count_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().epochs->Add();
  sink->SendLine("OK");
  sink->SendLine(net::FormatEpochResponseLine(env_name, epoch));
  sink->Flush(options_.sink.drain_grace_ms);
}

void NetServer::HandleFailpoint(SocketSink* sink, const std::string& line) {
  std::string site;
  std::string spec;
  Status status = net::ParseFailpointLine(line, &site, &spec);
  if (status.ok() && !failpoint::kCompiledIn) {
    status = Status::NotSupported(
        "this server was built without RINGJOIN_FAILPOINTS");
  }
  if (status.ok()) status = failpoint::Configure(site, spec);
  if (!status.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().rejected->Add();
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return;
  }
  sink->SendLine("OK");
  sink->Flush(options_.sink.drain_grace_ms);
}

bool NetServer::HandleMutation(SocketSink* sink, const std::string& line) {
  net::WireMutation mutation;
  Status status = net::ParseMutationLine(line, &mutation);
  LiveStats after;
  if (status.ok()) {
    switch (mutation.op) {
      case net::WireMutationOp::kInsert:
        status = router_->Insert(mutation.env_name, mutation.side,
                                 mutation.rec, &after);
        break;
      case net::WireMutationOp::kDelete:
        status = router_->Delete(mutation.env_name, mutation.side,
                                 mutation.rec.id, &after);
        break;
      case net::WireMutationOp::kCompact:
        status = router_->Compact(mutation.env_name, &after);
        break;
    }
  }
  if (!status.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().rejected->Add();
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return false;
  }
  mutations_count_.fetch_add(1, std::memory_order_relaxed);
  ServerMetrics::Get().mutations->Add();
  net::WireMutationAck ack;
  ack.op = mutation.op;
  ack.env_name = mutation.env_name;
  ack.epoch = after.epoch;
  ack.generation = after.generation;
  ack.delta = after.delta_size;
  ack.tombstones = after.tombstones;
  ack.compactions = after.compactions;
  sink->SendLine("OK");
  sink->SendLine(net::FormatMutationAckLine(ack));
  sink->Flush(options_.sink.drain_grace_ms);
  return true;
}

void NetServer::HandleMutations(int fd, SocketSink* sink, std::string line,
                                std::string* carry) {
  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms,
                                             options_.idle_timeout_ms};
  while (HandleMutation(sink, line)) {
    bool clean_eof = false;
    bool idle_closed = false;
    const Status status =
        net::ReadRequestLine(fd, read_options, &stop_, carry, &line,
                             &clean_eof, &idle_closed);
    if (!status.ok()) {
      if (idle_closed) {
        idle_closed_count_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().idle_closed->Add();
      }
      // A clean close (or the idle reaper with no partial line pending)
      // simply ends the batch; a half-delivered line is a real error.
      if (!clean_eof && !idle_closed && !line.empty()) {
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        ServerMetrics::Get().rejected->Add();
        sink->SendLine(net::FormatErrLine(status));
        sink->Flush(options_.sink.drain_grace_ms);
      }
      return;
    }
    if (!net::IsMutationRequestLine(line)) {
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().rejected->Add();
      sink->SendLine(net::FormatErrLine(Status::InvalidArgument(
          "only mutation requests may follow a mutation on one "
          "connection")));
      sink->Flush(options_.sink.drain_grace_ms);
      return;
    }
  }
}

void NetServer::HandleConnection(Connection* connection) {
  const int fd = connection->fd;
  // The sink's death (peer gone, or backpressure past the grace) pulls the
  // same cancellation hook a client drop does — from inside the failing
  // Emit(), before it returns false — so the service resolves the query as
  // Cancelled and the admission ledger classifies it exactly as the wire
  // reported it. A death that lands before the ticket is stored is caught
  // by the self-cancel after the store (the connection mutex orders the
  // two, mirroring the Stop() pattern).
  SocketSink sink(fd, options_.sink, [connection] {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket.Cancel();  // no-op until the ticket is stored
    connection->sink_died = true;
  });

  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms,
                                             options_.idle_timeout_ms};
  std::string carry;
  std::string line;
  bool idle_closed = false;
  Status status = net::ReadRequestLine(fd, read_options, &stop_, &carry,
                                       &line, nullptr, &idle_closed);
  if (idle_closed) {
    // The peer connected and sent nothing for the idle window: reap it
    // quietly — no ERR, it was never mid-conversation.
    idle_closed_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().idle_closed->Add();
  } else if (status.ok() && net::IsStatsRequestLine(line)) {
    HandleStats(&sink);
  } else if (status.ok() && net::IsMetricsRequestLine(line)) {
    HandleMetrics(&sink);
  } else if (status.ok() && net::IsEpochRequestLine(line)) {
    HandleEpoch(&sink, line);
  } else if (status.ok() && net::IsFailpointRequestLine(line)) {
    HandleFailpoint(&sink, line);
  } else if (status.ok() && net::IsMutationRequestLine(line)) {
    HandleMutations(fd, &sink, std::move(line), &carry);
  } else {
    HandleQuery(connection, &sink, status, line);
  }

  // The wire-volume counters only the sink knows, settled once per
  // connection (the sink is single-owner here, so the reads are safe).
  ServerMetrics::Get().bytes_sent->Add(sink.bytes_sent());
  ServerMetrics::Get().pairs_sent->Add(sink.emitted());
  ServerMetrics::Get().backpressure_stalls->Add(sink.stalls());

  {
    std::lock_guard<std::mutex> lock(connection->mu);
    close(fd);
    connection->fd = -1;
  }
  connection->done.store(true, std::memory_order_release);
}

void NetServer::HandleQuery(Connection* connection, SocketSink* sink,
                            Status status, const std::string& line) {
  const int fd = connection->fd;
  const auto query_start = std::chrono::steady_clock::now();
  net::WireRequest request;
  if (status.ok()) status = net::ParseRequestLine(line, &request);
  // The wire carries a *relative* budget; anchor it to this process's
  // steady clock the moment the request is understood. Everything below —
  // admission, the engine's chunk boundaries, the final ERR — compares
  // against this one absolute deadline.
  if (status.ok() && request.deadline_ms != 0) {
    request.spec.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(request.deadline_ms);
  }
  // A traced query carries its context on this frame: every layer below
  // records into it through spec.trace, and the ticket resolves before
  // this frame unwinds, so the lifetime holds by construction.
  std::unique_ptr<obs::TraceContext> trace;
  if (status.ok() && request.trace) {
    trace = std::make_unique<obs::TraceContext>(request.trace_id);
    request.spec.trace = trace.get();
  }
  // Name resolution, environment binding (a live environment binds a
  // pinned snapshot), and spec validation all happen inside Submit,
  // before admission — a malformed spec is a rejection (ERR before OK),
  // never a started query.
  QueryTicket ticket;
  if (status.ok()) {
    // The router decides admission synchronously; on_admit puts the OK
    // acknowledgement on the wire before the query can emit its first
    // PAIR, preserving the frame order with zero buffering tricks.
    obs::ScopedSpan admit_span(trace.get(), "admit", 1);
    status = router_->Submit(request.env_name, request.spec, sink, &ticket,
                             [sink] { sink->SendLine("OK"); });
  }

  if (!status.ok()) {
    if (status.code() == StatusCode::kOverloaded) {
      shed_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().shed->Add();
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      // Admission shed the query because its budget had already run out —
      // a deadline outcome, not a malformed request.
      expired_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().expired->Add();
    } else {
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().rejected->Add();
    }
    sink->SendLine(net::FormatErrLine(status));
    sink->Flush(options_.sink.drain_grace_ms);
    return;
  }

  bool sink_died_early;
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    connection->ticket = ticket;
    sink_died_early = connection->sink_died;
  }
  // Close the Stop() (and early sink-death) race: if the cancel pass ran
  // before the ticket was stored above, it cancelled an invalid (no-op)
  // ticket — but then its flag was already set, so self-cancel here.
  // Either interleaving cancels the real ticket (the connection mutex
  // orders the two).
  if (sink_died_early || stop_.load(std::memory_order_relaxed)) {
    ticket.Cancel();
  }

  // Babysit the in-flight query: resolve the ticket while watching the
  // socket's read side. A read *error* (ECONNRESET: the peer vanished
  // with data in flight) cancels the query — the service stops delivery
  // at the next pair, so the other connections' joins keep their
  // workers. A plain EOF is NOT a cancellation: a netcat-style client
  // legitimately half-closes its write side after the request while it
  // keeps reading, so EOF only means "done sending" — a peer that truly
  // closed is caught by the sink's failing sends instead.
  Status final;
  bool peer_gone = false;
  bool read_side_open = true;
  while (!ticket.TryGet(&final)) {
    if (!read_side_open) {
      final = ticket.Wait();  // sink death / Stop() resolve the ticket
      break;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 20);
    if (ready <= 0) continue;
    char buffer[256];
    const ssize_t got = recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (got > 0) continue;  // stray bytes: one request per connection
    if (got < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    if (got == 0) {
      read_side_open = false;  // half-close: keep streaming
    } else {
      peer_gone = true;  // hard error: the peer is gone
      ticket.Cancel();
      read_side_open = false;
    }
  }

  std::string outcome;
  if (final.ok() && !sink->dead()) {
    if (trace != nullptr) {
      // Drain the streamed pairs first, timed: a slow consumer's
      // backpressure wait shows up as this span. (The control-frame flush
      // below stays untraced — its duration could not be reported anyway.)
      const auto flush_start = obs::TraceClock::now();
      sink->Flush(options_.sink.drain_grace_ms);
      trace->Record("sink_flush", 1, flush_start, obs::TraceClock::now());
    }
    net::WireSummary summary;
    summary.pairs = sink->emitted();
    summary.stats = ticket.stats();
    sink->SendLine(net::FormatEndLine(summary));
    if (trace != nullptr) {
      // The span tree rides after END: the result stream stays
      // byte-identical to an untraced run up to and including END, and a
      // trace-aware client reads on until ENDTRACE.
      trace->Record("server", 0, trace->start_time(), obs::TraceClock::now());
      const std::vector<obs::TraceSpan> spans = trace->Spans();
      for (const obs::TraceSpan& span : spans) {
        net::WireTraceSpan wire;
        wire.id = trace->id();
        wire.depth = static_cast<uint64_t>(span.depth);
        wire.span = span.name;
        wire.count = span.count;
        wire.total_s = span.total_seconds;
        wire.start_s = span.start_seconds;
        sink->SendLine(net::FormatTraceLine(wire));
      }
      sink->SendLine(net::FormatTraceEndLine(trace->id(), spans.size()));
    }
    if (sink->Flush(options_.sink.drain_grace_ms)) {
      ok_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().ok->Add();
      outcome = "ok";
    } else {
      cancelled_count_.fetch_add(1, std::memory_order_relaxed);
      ServerMetrics::Get().cancelled->Add();
      outcome = "cancelled (final flush)";
    }
  } else if (final.code() == StatusCode::kCancelled || sink->dead() ||
             peer_gone) {
    cancelled_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().cancelled->Add();
    sink->SendLine(net::FormatErrLine(
        Status::Cancelled("stream cancelled before completion")));
    sink->Flush(options_.sink.drain_grace_ms);
    outcome = "cancelled";
  } else if (final.code() == StatusCode::kDeadlineExceeded) {
    // The engine aborted the stream at a chunk boundary when the budget
    // ran out mid-flight: same outcome class as the admission shed above.
    expired_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().expired->Add();
    sink->SendLine(net::FormatErrLine(final));
    sink->Flush(options_.sink.drain_grace_ms);
    outcome = "expired: " + final.message();
  } else {
    failed_count_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().failed->Add();
    sink->SendLine(net::FormatErrLine(final));
    sink->Flush(options_.sink.drain_grace_ms);
    outcome = "failed: " + final.message();
  }

  obs::SlowQueryEntry slow;
  slow.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    query_start)
          .count();
  slow.pairs = sink->emitted();
  slow.env = request.env_name;
  if (trace != nullptr) slow.trace_id = trace->id();
  slow.detail = outcome;
  obs::MetricsRegistry::Default().slow_log()->MaybeRecord(slow);
}

}  // namespace rcj
