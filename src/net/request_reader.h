// Server-side request-line framing, shared by NetServer and FleetProxy.
//
// Reads one LF-terminated request line off a connected socket under a
// wall-clock deadline and a length cap. Bytes received past the newline
// are preserved in a caller-owned carry buffer and consumed by the next
// call — the mechanism that lets one connection carry a *batch* of
// mutation requests (PR 7's open follow-up) instead of the historical
// one-request-per-connection rule, without ever re-reading the socket
// for data that already arrived.
#ifndef RINGJOIN_NET_REQUEST_READER_H_
#define RINGJOIN_NET_REQUEST_READER_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/status.h"

namespace rcj {
namespace net {

struct RequestReadOptions {
  /// Hard cap on the request line; longer requests are rejected.
  size_t max_request_bytes = 4096;
  /// How long the peer may take to deliver the full line.
  int request_timeout_ms = 10000;
  /// How long a connection may sit with *no bytes of a next request* (not
  /// even a partial line) before the server reaps it; 0 disables. Only
  /// meaningful when shorter than request_timeout_ms: once the first byte
  /// arrives the peer is mid-request and the request timeout governs.
  int idle_timeout_ms = 0;
};

/// Reads the next request line from `fd` into `*line` (LF consumed, no
/// trailing CR stripping — the strict parsers reject CRs like any other
/// unexpected byte, matching the historical server behavior). `*carry`
/// holds surplus bytes between calls and must persist per connection.
///
/// On a clean EOF — the peer closed with no partial line pending —
/// `*clean_eof` (when non-null) is set and InvalidArgument is returned;
/// batch loops use the flag to end without treating the close as an
/// error. `stop` (when non-null) aborts the wait when set, so server
/// shutdown unblocks handler threads promptly.
///
/// When `idle_timeout_ms` elapses with zero bytes of a next request
/// received, `*idle_closed` (when non-null) is set and InvalidArgument is
/// returned — the reaper path for keep-alive connections that went quiet,
/// distinguishable from a peer that stalled mid-request.
Status ReadRequestLine(int fd, const RequestReadOptions& options,
                       const std::atomic<bool>* stop, std::string* carry,
                       std::string* line, bool* clean_eof = nullptr,
                       bool* idle_closed = nullptr);

}  // namespace net
}  // namespace rcj

#endif  // RINGJOIN_NET_REQUEST_READER_H_
