// SocketSink — the PairSink that turns a connected TCP socket into a
// streaming result channel.
//
// Every pair is serialized to one PAIR line and appended to a bounded
// pending buffer that is drained with non-blocking sends, so a reading
// client receives results incrementally while the join is still running.
// Backpressure maps onto the engine's cancellation contract: when the
// kernel send buffer is full and the pending buffer would exceed its bound
// (after a short drain grace), or the peer disconnected, Emit() returns
// false — exactly the signal a satisfied limit raises — and the engine
// cancels the query's remaining work instead of joining for a client that
// cannot or will not consume the stream.
//
// Threading: like every per-query sink, one thread drives Emit() at a time
// (the engine serializes delivery per query). The connection thread only
// calls SendLine()/Flush() before submitting and after the ticket resolved,
// so no internal locking is needed.
#ifndef RINGJOIN_NET_SOCKET_SINK_H_
#define RINGJOIN_NET_SOCKET_SINK_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "core/pair_sink.h"

namespace rcj {

struct SocketSinkOptions {
  /// Bound of the userspace pending buffer (serialized-but-unsent bytes).
  /// Overflowing it past the drain grace cancels the query.
  size_t max_pending_bytes = 256 * 1024;
  /// How long one Emit() may wait for the socket to become writable once
  /// the pending buffer is full before declaring the consumer dead.
  int drain_grace_ms = 2000;
};

class SocketSink final : public PairSink {
 public:
  /// Does not own `fd`; the caller closes it after the last Flush().
  /// `on_dead`, when set, fires exactly once on the transition to dead(),
  /// from whatever thread caused it (the engine's during Emit, the
  /// connection's during SendLine/Flush) and before the failing call
  /// returns — the server uses it to pull QueryTicket::Cancel() so the
  /// service resolves a backpressure-killed stream as Cancelled, keeping
  /// the admission ledger consistent with the wire's ERR frame.
  explicit SocketSink(int fd, SocketSinkOptions options = {},
                      std::function<void()> on_dead = nullptr);

  /// Serializes and enqueues one PAIR line. Returns false — requesting
  /// engine-side cancellation — once the peer is gone or the bounded
  /// pending buffer cannot be drained.
  bool Emit(const RcjPair& pair) override;

  /// Enqueues one control frame (OK/END/ERR, without the newline). Returns
  /// false when the sink is already dead.
  bool SendLine(const std::string& line);

  /// Blocks up to `timeout_ms` draining the pending buffer; true when every
  /// queued byte reached the kernel.
  bool Flush(int timeout_ms);

  /// True once a send failed or the pending bound was overrun; no further
  /// bytes will be accepted or sent.
  bool dead() const { return dead_; }

  /// PAIR lines accepted so far (the count an END summary reports).
  uint64_t emitted() const { return emitted_; }

  /// Bytes handed to the kernel so far (result payload plus control
  /// frames sent through this sink).
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Times an Emit() hit the pending-buffer bound and had to sit out the
  /// drain grace — the backpressure signal the server's registry counts.
  uint64_t stalls() const { return stalls_; }

 private:
  bool Append(const std::string& line);
  /// Sends as much pending data as the socket accepts right now.
  void TryDrain();
  /// Marks the sink dead, firing on_dead exactly once.
  void MarkDead();
  /// Bytes enqueued but not yet handed to the kernel.
  size_t pending_bytes() const { return pending_.size() - drained_; }

  int fd_;
  SocketSinkOptions options_;
  std::function<void()> on_dead_;
  std::string pending_;
  /// Length of pending_'s already-sent prefix (compacted lazily).
  size_t drained_ = 0;
  bool dead_ = false;
  uint64_t emitted_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t stalls_ = 0;
};

}  // namespace rcj

#endif  // RINGJOIN_NET_SOCKET_SINK_H_
