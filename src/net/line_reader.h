// Client-side socket I/O helpers for the ringjoin wire protocol — the
// consuming counterpart of SocketSink. One LF-framed reader shared by
// every in-tree client (rcj_tool client, examples) so framing details
// (CR stripping, EINTR, partial recv) live in exactly one place.
#ifndef RINGJOIN_NET_LINE_READER_H_
#define RINGJOIN_NET_LINE_READER_H_

#include <sys/socket.h>

#include <cerrno>
#include <cstddef>
#include <string>

namespace rcj {
namespace net {

/// Reads LF-terminated lines off a blocking socket through a small
/// internal buffer. Not thread-safe; one reader per connection.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Fills `*line` with the next line (LF consumed, trailing CR
  /// stripped). False on EOF or a hard error before a complete line.
  bool ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      for (; next_ < buffered_; ++next_) {
        if (buffer_[next_] == '\n') {
          ++next_;
          if (!line->empty() && line->back() == '\r') line->pop_back();
          return true;
        }
        line->push_back(buffer_[next_]);
      }
      const ssize_t got = recv(fd_, buffer_, sizeof(buffer_), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return false;
      }
      buffered_ = static_cast<size_t>(got);
      next_ = 0;
    }
  }

 private:
  int fd_;
  char buffer_[4096];
  size_t buffered_ = 0;
  size_t next_ = 0;
};

/// Sends the whole buffer (EINTR/partial-send safe, SIGPIPE suppressed).
/// False once the peer is gone.
inline bool SendAll(int fd, const std::string& data) {
  size_t sent_total = 0;
  while (sent_total < data.size()) {
    const ssize_t sent = send(fd, data.data() + sent_total,
                              data.size() - sent_total, MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    if (sent <= 0) return false;
    sent_total += static_cast<size_t>(sent);
  }
  return true;
}

}  // namespace net
}  // namespace rcj

#endif  // RINGJOIN_NET_LINE_READER_H_
