#include "net/socket_sink.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>

#include "net/protocol.h"

namespace rcj {

SocketSink::SocketSink(int fd, SocketSinkOptions options,
                       std::function<void()> on_dead)
    : fd_(fd), options_(options), on_dead_(std::move(on_dead)) {
  if (options_.max_pending_bytes == 0) options_.max_pending_bytes = 1;
}

void SocketSink::MarkDead() {
  if (dead_) return;
  dead_ = true;
  if (on_dead_) on_dead_();
}

bool SocketSink::Emit(const RcjPair& pair) {
  if (!Append(net::FormatPairLine(pair))) return false;
  ++emitted_;
  return true;
}

bool SocketSink::SendLine(const std::string& line) { return Append(line); }

bool SocketSink::Append(const std::string& line) {
  if (dead_) return false;
  pending_ += line;
  pending_ += '\n';
  TryDrain();
  if (dead_) return false;
  if (pending_bytes() > options_.max_pending_bytes) {
    // The kernel buffer and our bound are both full: give the consumer one
    // bounded grace period, then treat it as gone. A client that merely
    // reads slowly gets back under the bound within the grace (a complete
    // drain is not required); one that stopped reading turns into a
    // cancellation instead of an unbounded queue.
    ++stalls_;
    Flush(options_.drain_grace_ms);
    if (dead_ || pending_bytes() > options_.max_pending_bytes) {
      MarkDead();
      return false;
    }
  }
  return true;
}

void SocketSink::TryDrain() {
  // drained_ indexes the sent prefix; the buffer is compacted only when
  // empty or the dead prefix dominates, so partial kernel-sized sends cost
  // linear copies instead of a memmove of the whole backlog each round.
  while (drained_ < pending_.size() && !dead_) {
    const ssize_t sent =
        send(fd_, pending_.data() + drained_, pending_.size() - drained_,
             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (sent > 0) {
      drained_ += static_cast<size_t>(sent);
      bytes_sent_ += static_cast<uint64_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    MarkDead();  // peer closed or the connection errored
  }
  if (drained_ == pending_.size()) {
    pending_.clear();
    drained_ = 0;
  } else if (drained_ > options_.max_pending_bytes) {
    pending_.erase(0, drained_);
    drained_ = 0;
  }
}

bool SocketSink::Flush(int timeout_ms) {
  TryDrain();
  // The deadline is wall-clock: poll() returning early (socket writable,
  // signal) must not eat into the grace.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (pending_bytes() > 0 && !dead_) {
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline -
                                   std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return false;
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int step_ms =
        remaining.count() < 50 ? static_cast<int>(remaining.count()) : 50;
    const int ready = poll(&pfd, 1, step_ms);
    if (ready < 0 && errno != EINTR) {
      MarkDead();
      return false;
    }
    if (ready > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      MarkDead();
      return false;
    }
    TryDrain();
  }
  return pending_bytes() == 0 && !dead_;
}

}  // namespace rcj
