// rcj::NetServer — the TCP front door of the ringjoin stack.
//
// Layered on rcj::ShardRouter: one accepted connection carries one
// request conversation. A QUERY line becomes one routed Submit() ticket
// on the target environment's shard and streams its result pairs back
// through a SocketSink in the exact serial order the engine delivers
// them; an INSERT/DELETE/COMPACT line is a routed mutation of a live
// environment, answered with an OK + MUT acknowledgement — and further
// mutation lines may follow on the same connection (a batch: one
// connection, many ops, one ack each) until the client closes or errs;
// a STATS line is answered
// immediately with the router's per-shard and per-environment ledgers
// (protocol.h defines all the grammars). Admission control surfaces on the
// wire: a submission the router sheds (bounded shard queue or global
// in-flight cap) is answered with `ERR Overloaded` before any OK, so an
// overloaded server fails fast instead of queueing unboundedly.
//
// The connection lifecycle maps onto the service's cancellation hook in
// both directions:
//
//   * client drop — the connection thread watches the socket while the
//     ticket is in flight; an EOF or error pulls QueryTicket::Cancel(), so
//     the engine abandons the query's remaining leaf ranges instead of
//     joining for a departed caller;
//   * slow consumer — the SocketSink's bounded pending buffer turns a
//     stalled socket into Emit()->false, the same limit-style cancellation.
//
// Connections are served by one thread each (the joins themselves run on
// the shard engines' pools; connection threads only shuttle bytes), and
// every environment the server can answer for is registered by name on
// the router — requests select one with the `env=` field.
#ifndef RINGJOIN_NET_NET_SERVER_H_
#define RINGJOIN_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "net/socket_sink.h"
#include "shard/shard_router.h"

namespace rcj {

struct NetServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() after Start()).
  uint16_t port = 0;
  /// Listen address. The default only accepts loopback peers; widen it
  /// explicitly (e.g. "0.0.0.0") to serve remote callers.
  std::string bind_address = "127.0.0.1";
  int backlog = 64;
  /// Cap on simultaneously served connections (each holds one thread).
  /// At the cap the accept loop defers — further peers wait in the kernel
  /// backlog instead of spawning unbounded threads.
  size_t max_connections = 256;
  /// Hard cap on the request line; longer requests are rejected.
  size_t max_request_bytes = 4096;
  /// How long a connection may take to deliver a request line (applied
  /// per line: each mutation of a batch gets a fresh allowance).
  int request_timeout_ms = 10000;
  /// Reap a connection that sits with no bytes of a next request for this
  /// long (0 = off). A keep-alive client that went quiet is closed without
  /// an ERR and counted in Counters::idle_closed; a peer that stalled
  /// mid-line stays governed by request_timeout_ms.
  int idle_timeout_ms = 0;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Shrinking
  /// it (tests do) makes the sink's bounded-queue backpressure bite after
  /// a few pairs instead of after megabytes.
  int send_buffer_bytes = 0;
  /// Backpressure knobs of each connection's SocketSink.
  SocketSinkOptions sink;
  /// Queries whose wall time meets this threshold are remembered by the
  /// process-wide slow-query log (dumped by METRICS and rcj_tool).
  /// Negative leaves the log's current configuration alone (off by
  /// default); 0 records every query.
  double slow_query_ms = -1.0;
  /// Period of the background thread that refreshes registry gauges
  /// (active connections, shard queue depths) from the router's ledgers.
  /// 0 or negative disables the thread.
  int metrics_snapshot_ms = 1000;
};

class NetServer {
 public:
  /// Monotonic counters of connection outcomes, for observability and
  /// tests (e.g. asserting that a mid-stream disconnect was counted as a
  /// cancellation, not a success).
  struct Counters {
    uint64_t connections = 0;  ///< accepted sockets.
    uint64_t ok = 0;           ///< full stream + END delivered.
    uint64_t rejected = 0;     ///< malformed/unknown requests (ERR before OK).
    uint64_t shed = 0;         ///< refused by admission (ERR Overloaded).
    uint64_t cancelled = 0;    ///< client drop or backpressure cancellation.
    uint64_t failed = 0;       ///< engine-side query failure (ERR after OK).
    uint64_t stats = 0;        ///< STATS probes answered.
    uint64_t mutations = 0;    ///< INSERT/DELETE/COMPACT applied (OK + MUT).
    uint64_t metrics = 0;      ///< METRICS scrapes answered.
    uint64_t expired = 0;      ///< deadline exceeded (ERR DeadlineExceeded).
    uint64_t idle_closed = 0;  ///< reaped by the idle timeout.
    uint64_t epochs = 0;       ///< EPOCH probes answered.
  };

  /// Serves queries by submitting through `router`, whose registered
  /// environments are the ones requests may name. The router (and every
  /// environment registered on it) must outlive the server.
  NetServer(ShardRouter* router, NetServerOptions options = {});
  ~NetServer();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(NetServer);

  /// Binds, listens, and starts accepting. IoError on bind/listen failure
  /// (e.g. the port is taken).
  Status Start();

  /// Stops accepting, cancels every in-flight ticket, unblocks and joins
  /// all connection threads. Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (resolves ephemeral port 0); valid after Start().
  uint16_t port() const { return port_; }

  Counters counters() const;

 private:
  /// Per-connection state shared between its handler thread and Stop().
  struct Connection {
    std::mutex mu;
    int fd = -1;           // -1 once the handler closed it
    QueryTicket ticket;    // valid once submitted
    /// Set by the sink's on_dead hook; lets the handler close the race
    /// where the sink died before the ticket was stored (mirrors the
    /// Stop() self-cancel pattern).
    bool sink_died = false;
    /// Set by the handler as its very last step; the accept loop reaps
    /// (joins and erases) done connections so a long-lived server does
    /// not accumulate dead threads.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Connection* connection);
  /// Routes one QUERY request: validation, admission, submission, and the
  /// in-flight babysitting until the ticket resolves. `status` carries any
  /// request-read error; `line` is the raw request line.
  void HandleQuery(Connection* connection, SocketSink* sink, Status status,
                   const std::string& line);
  /// Answers a STATS request on `sink` with the router's per-shard and
  /// per-environment ledgers.
  void HandleStats(SocketSink* sink);
  /// Answers a METRICS request on `sink` with the process-wide registry's
  /// Prometheus exposition (OK, the exposition lines, ENDMETRICS).
  void HandleMetrics(SocketSink* sink);
  /// Answers an EPOCH probe: OK plus one epoch response row for the named
  /// environment (static environments report epoch 0).
  void HandleEpoch(SocketSink* sink, const std::string& line);
  /// Arms or disarms one failpoint site (test builds only; ERR
  /// NotSupported when failpoints are compiled out).
  void HandleFailpoint(SocketSink* sink, const std::string& line);
  /// Body of the periodic gauge-refresh thread (options.metrics_snapshot_ms).
  void SnapshotLoop();
  /// Serves a batch of mutation lines, the first already read into
  /// `line`: each is applied through the router and acknowledged with
  /// OK + MUT, then the next line is read off the same connection until
  /// the client closes (clean end) or a line fails (ERR, conversation
  /// over). Mutations are synchronous — no ticket, no admission slot;
  /// the router serializes them against the target environment's locks.
  void HandleMutations(int fd, SocketSink* sink, std::string line,
                       std::string* carry);
  /// Applies one INSERT/DELETE/COMPACT line through the router and
  /// acknowledges with OK + MUT; false when the line failed and an ERR
  /// was sent instead (which ends the conversation).
  bool HandleMutation(SocketSink* sink, const std::string& line);
  /// Joins and erases the connections whose handlers have finished.
  void ReapFinishedConnections();

  ShardRouter* router_;
  NetServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::thread snapshot_thread_;
  std::mutex snapshot_mu_;
  std::condition_variable snapshot_cv_;

  std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;

  std::atomic<uint64_t> connections_count_{0};
  std::atomic<uint64_t> ok_count_{0};
  std::atomic<uint64_t> rejected_count_{0};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<uint64_t> cancelled_count_{0};
  std::atomic<uint64_t> failed_count_{0};
  std::atomic<uint64_t> stats_count_{0};
  std::atomic<uint64_t> mutations_count_{0};
  std::atomic<uint64_t> metrics_count_{0};
  std::atomic<uint64_t> expired_count_{0};
  std::atomic<uint64_t> idle_closed_count_{0};
  std::atomic<uint64_t> epochs_count_{0};
};

}  // namespace rcj

#endif  // RINGJOIN_NET_NET_SERVER_H_
