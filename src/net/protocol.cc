#include "net/protocol.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/macros.h"

namespace rcj {
namespace net {
namespace {

/// Splits on runs of spaces/tabs and drops a trailing CR, so both strict
/// clients and interactive netcat sessions (which send CRLF) parse alike.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '\n' || c == '\r') break;
    if (c == ' ' || c == '\t') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Status ParseBoolField(const std::string& key, const std::string& value,
                      bool* out) {
  if (!ParseBoolName(value, out)) {
    return Status::InvalidArgument("field '" + key +
                                   "' wants 0/1/true/false, got '" + value +
                                   "'");
  }
  return Status::OK();
}

bool IsEnvName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

const char* StatusCodeWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

bool ParseStatusCodeWireName(const std::string& token, StatusCode* code) {
  for (StatusCode candidate :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kCorruption,
        StatusCode::kNotSupported, StatusCode::kOutOfRange,
        StatusCode::kCancelled, StatusCode::kOverloaded,
        StatusCode::kDeadlineExceeded}) {
    if (token == StatusCodeWireName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kOverloaded:
      return Status::Overloaded(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kOk:
      break;
  }
  return Status::OK();
}

}  // namespace

const char* AlgorithmWireName(RcjAlgorithm algorithm) {
  switch (algorithm) {
    case RcjAlgorithm::kBrute:
      return "brute";
    case RcjAlgorithm::kInj:
      return "inj";
    case RcjAlgorithm::kBij:
      return "bij";
    case RcjAlgorithm::kObj:
      return "obj";
  }
  return "?";
}

bool ParseAlgorithmName(const std::string& name, RcjAlgorithm* algorithm) {
  for (RcjAlgorithm candidate : {RcjAlgorithm::kBrute, RcjAlgorithm::kInj,
                                 RcjAlgorithm::kBij, RcjAlgorithm::kObj}) {
    if (name == AlgorithmWireName(candidate)) {
      *algorithm = candidate;
      return true;
    }
  }
  return false;
}

const char* SearchOrderWireName(SearchOrder order) {
  switch (order) {
    case SearchOrder::kDepthFirst:
      return "dfs";
    case SearchOrder::kRandom:
      return "random";
  }
  return "?";
}

bool ParseSearchOrderName(const std::string& name, SearchOrder* order) {
  for (SearchOrder candidate :
       {SearchOrder::kDepthFirst, SearchOrder::kRandom}) {
    if (name == SearchOrderWireName(candidate)) {
      *order = candidate;
      return true;
    }
  }
  return false;
}

bool ParseBoolName(const std::string& name, bool* value) {
  if (name == "1" || name == "true") {
    *value = true;
    return true;
  }
  if (name == "0" || name == "false") {
    *value = false;
    return true;
  }
  return false;
}

Status ParseUint64Field(const std::string& key, const std::string& value,
                        uint64_t* out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("field '" + key +
                                   "' is not an unsigned integer: '" +
                                   value + "'");
  }
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("field '" + key + "' overflows uint64: '" +
                              value + "'");
  }
  *out = static_cast<uint64_t>(parsed);
  return Status::OK();
}

Status ParseInt64Field(const std::string& key, const std::string& value,
                       int64_t* out) {
  const size_t digits_from = value.rfind('-', 0) == 0 ? 1 : 0;
  if (value.size() == digits_from ||
      value.find_first_not_of("0123456789", digits_from) !=
          std::string::npos) {
    return Status::InvalidArgument("field '" + key +
                                   "' is not an integer: '" + value + "'");
  }
  errno = 0;
  const long long parsed = std::strtoll(value.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("field '" + key + "' overflows int64: '" +
                              value + "'");
  }
  *out = static_cast<int64_t>(parsed);
  return Status::OK();
}

Status ParseDoubleField(const std::string& key, const std::string& value,
                        double* out) {
  if (value.empty()) {
    return Status::InvalidArgument("field '" + key + "' is empty");
  }
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || !std::isfinite(parsed)) {
    return Status::InvalidArgument("field '" + key +
                                   "' is not a finite number: '" + value +
                                   "'");
  }
  *out = parsed;
  return Status::OK();
}

Status ParseRequestLine(const std::string& line, WireRequest* out) {
  *out = WireRequest{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "QUERY") {
    return Status::InvalidArgument("request must start with QUERY");
  }

  std::vector<std::string> seen;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& field = tokens[i];
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("field '" + field +
                                     "' is not key=value");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key.empty()) {
      return Status::InvalidArgument("empty key in field '" + field + "'");
    }
    for (const std::string& earlier : seen) {
      if (earlier == key) {
        return Status::InvalidArgument("duplicate key '" + key + "'");
      }
    }
    seen.push_back(key);

    Status status = Status::OK();
    if (key == "env") {
      if (!IsEnvName(value)) {
        status = Status::InvalidArgument("invalid env name '" + value + "'");
      } else {
        out->env_name = value;
      }
    } else if (key == "algo") {
      if (!ParseAlgorithmName(value, &out->spec.algorithm)) {
        status =
            Status::InvalidArgument("unknown algorithm '" + value +
                                    "' (want brute|inj|bij|obj)");
      }
    } else if (key == "order") {
      if (!ParseSearchOrderName(value, &out->spec.order)) {
        status = Status::InvalidArgument("unknown search order '" + value +
                                         "' (want dfs|random)");
      }
    } else if (key == "verify") {
      status = ParseBoolField(key, value, &out->spec.verify);
    } else if (key == "seed") {
      status = ParseUint64Field(key, value, &out->spec.random_seed);
    } else if (key == "limit") {
      status = ParseUint64Field(key, value, &out->spec.limit);
    } else if (key == "io_ms") {
      status = ParseDoubleField(key, value, &out->spec.io_ms_per_fault);
      if (status.ok() && out->spec.io_ms_per_fault < 0.0) {
        status = Status::OutOfRange("field 'io_ms' must be non-negative");
      }
    } else if (key == "deadline_ms") {
      status = ParseUint64Field(key, value, &out->deadline_ms);
      if (status.ok() && out->deadline_ms == 0) {
        status = Status::OutOfRange("field 'deadline_ms' must be positive");
      }
    } else if (key == "trace") {
      status = ParseBoolField(key, value, &out->trace);
    } else if (key == "trace_id") {
      if (!IsValidTraceId(value)) {
        status = Status::InvalidArgument("invalid trace id '" + value + "'");
      } else {
        out->trace_id = value;
      }
    } else {
      status = Status::InvalidArgument("unknown key '" + key + "'");
    }
    if (!status.ok()) return status;
  }
  return Status::OK();
}

std::string FormatRequestLine(const WireRequest& request) {
  const WireRequest defaults;
  std::string line = "QUERY";
  if (request.env_name != defaults.env_name) {
    line += " env=" + request.env_name;
  }
  if (request.spec.algorithm != defaults.spec.algorithm) {
    line += std::string(" algo=") + AlgorithmWireName(request.spec.algorithm);
  }
  if (request.spec.order != defaults.spec.order) {
    line += std::string(" order=") + SearchOrderWireName(request.spec.order);
  }
  if (request.spec.verify != defaults.spec.verify) {
    line += request.spec.verify ? " verify=1" : " verify=0";
  }
  if (request.spec.random_seed != defaults.spec.random_seed) {
    line += " seed=" + std::to_string(request.spec.random_seed);
  }
  if (request.spec.limit != defaults.spec.limit) {
    line += " limit=" + std::to_string(request.spec.limit);
  }
  if (request.spec.io_ms_per_fault != defaults.spec.io_ms_per_fault) {
    line += " io_ms=" + FormatDouble(request.spec.io_ms_per_fault);
  }
  if (request.deadline_ms != 0) {
    line += " deadline_ms=" + std::to_string(request.deadline_ms);
  }
  if (request.trace) line += " trace=1";
  if (!request.trace_id.empty()) line += " trace_id=" + request.trace_id;
  return line;
}

std::string FormatPairLine(const RcjPair& pair) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "PAIR %" PRId64 " %" PRId64 " %.17g %.17g %.17g %.17g",
                pair.p.id, pair.q.id, pair.p.pt.x, pair.p.pt.y, pair.q.pt.x,
                pair.q.pt.y);
  return buffer;
}

Status ParsePairLine(const std::string& line, RcjPair* out) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() != 7 || tokens[0] != "PAIR") {
    return Status::InvalidArgument(
        "PAIR line wants 'PAIR p_id q_id x1 y1 x2 y2'");
  }
  PointRecord p;
  PointRecord q;
  for (int side = 0; side < 2; ++side) {
    const std::string& id_token = tokens[1 + side];
    errno = 0;
    char* end = nullptr;
    const long long id = std::strtoll(id_token.c_str(), &end, 10);
    if (end != id_token.c_str() + id_token.size() || id_token.empty() ||
        errno == ERANGE) {
      return Status::InvalidArgument("bad point id '" + id_token + "'");
    }
    (side == 0 ? p : q).id = static_cast<PointId>(id);
  }
  double coords[4];
  for (int i = 0; i < 4; ++i) {
    const std::string& token = tokens[3 + i];
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(value)) {
      return Status::InvalidArgument("bad coordinate '" + token + "'");
    }
    coords[i] = value;
  }
  p.pt = Point{coords[0], coords[1]};
  q.pt = Point{coords[2], coords[3]};
  *out = RcjPair::Make(p, q);
  return Status::OK();
}

std::string FormatEndLine(const WireSummary& summary) {
  char buffer[352];
  std::snprintf(buffer, sizeof(buffer),
                "END pairs=%llu candidates=%llu results=%llu "
                "node_accesses=%llu faults=%llu cold_faults=%llu "
                "warm_faults=%llu io_s=%.17g io_wall_s=%.17g cpu_s=%.17g",
                static_cast<unsigned long long>(summary.pairs),
                static_cast<unsigned long long>(summary.stats.candidates),
                static_cast<unsigned long long>(summary.stats.results),
                static_cast<unsigned long long>(summary.stats.node_accesses),
                static_cast<unsigned long long>(summary.stats.page_faults),
                static_cast<unsigned long long>(summary.stats.cold_faults),
                static_cast<unsigned long long>(summary.stats.warm_faults),
                summary.stats.io_seconds, summary.stats.io_wall_seconds,
                summary.stats.cpu_seconds);
  return buffer;
}

Status ParseEndLine(const std::string& line, WireSummary* out) {
  *out = WireSummary{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "END") {
    return Status::InvalidArgument("END line must start with END");
  }
  bool seen[10] = {};
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("END field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    Status status = Status::OK();
    int slot = -1;
    if (key == "pairs") {
      slot = 0;
      status = ParseUint64Field(key, value, &out->pairs);
    } else if (key == "candidates") {
      slot = 1;
      status = ParseUint64Field(key, value, &out->stats.candidates);
    } else if (key == "results") {
      slot = 2;
      status = ParseUint64Field(key, value, &out->stats.results);
    } else if (key == "node_accesses") {
      slot = 3;
      status = ParseUint64Field(key, value, &out->stats.node_accesses);
    } else if (key == "faults") {
      slot = 4;
      status = ParseUint64Field(key, value, &out->stats.page_faults);
    } else if (key == "cold_faults") {
      slot = 5;
      status = ParseUint64Field(key, value, &out->stats.cold_faults);
    } else if (key == "warm_faults") {
      slot = 6;
      status = ParseUint64Field(key, value, &out->stats.warm_faults);
    } else if (key == "io_s") {
      slot = 7;
      status = ParseDoubleField(key, value, &out->stats.io_seconds);
    } else if (key == "io_wall_s") {
      slot = 8;
      status = ParseDoubleField(key, value, &out->stats.io_wall_seconds);
    } else if (key == "cpu_s") {
      slot = 9;
      status = ParseDoubleField(key, value, &out->stats.cpu_seconds);
    } else {
      return Status::InvalidArgument("unknown END key '" + key + "'");
    }
    if (!status.ok()) return status;
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate END key '" + key + "'");
    }
    seen[slot] = true;
  }
  for (bool present : seen) {
    if (!present) {
      return Status::InvalidArgument("END line is missing fields");
    }
  }
  return Status::OK();
}

std::string FormatErrLine(const Status& status) {
  std::string line = "ERR ";
  line += StatusCodeWireName(status.code());
  if (!status.message().empty()) {
    line += ' ';
    // Keep the frame one line no matter what the message contains.
    for (char c : status.message()) {
      line += (c == '\n' || c == '\r') ? ' ' : c;
    }
  }
  return line;
}

bool IsStatsRequestLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return tokens.size() == 1 && tokens[0] == "STATS";
}

std::string FormatShardStatsLine(const WireShardStats& stats) {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "SHARD %llu envs=%llu queued=%llu inflight=%llu "
                "submitted=%llu admitted=%llu shed=%llu completed=%llu "
                "cancelled=%llu failed=%llu",
                static_cast<unsigned long long>(stats.shard),
                static_cast<unsigned long long>(stats.environments),
                static_cast<unsigned long long>(stats.queued),
                static_cast<unsigned long long>(stats.inflight),
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.completed),
                static_cast<unsigned long long>(stats.cancelled),
                static_cast<unsigned long long>(stats.failed));
  return buffer;
}

Status ParseShardStatsLine(const std::string& line, WireShardStats* out) {
  *out = WireShardStats{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() < 2 || tokens[0] != "SHARD") {
    return Status::InvalidArgument("SHARD line wants 'SHARD idx key=N ...'");
  }
  RINGJOIN_RETURN_IF_ERROR(ParseUint64Field("shard", tokens[1], &out->shard));
  struct Field {
    const char* key;
    uint64_t* slot;
  };
  const Field fields[] = {
      {"envs", &out->environments},   {"queued", &out->queued},
      {"inflight", &out->inflight},   {"submitted", &out->submitted},
      {"admitted", &out->admitted},   {"shed", &out->shed},
      {"completed", &out->completed}, {"cancelled", &out->cancelled},
      {"failed", &out->failed},
  };
  constexpr size_t kFieldCount = sizeof(fields) / sizeof(fields[0]);
  bool seen[kFieldCount] = {};
  for (size_t i = 2; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("SHARD field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    size_t slot = kFieldCount;
    for (size_t f = 0; f < kFieldCount; ++f) {
      if (key == fields[f].key) {
        slot = f;
        break;
      }
    }
    if (slot == kFieldCount) {
      return Status::InvalidArgument("unknown SHARD key '" + key + "'");
    }
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate SHARD key '" + key + "'");
    }
    seen[slot] = true;
    RINGJOIN_RETURN_IF_ERROR(ParseUint64Field(key, value, fields[slot].slot));
  }
  for (bool present : seen) {
    if (!present) {
      return Status::InvalidArgument("SHARD line is missing fields");
    }
  }
  return Status::OK();
}

std::string FormatEnvStatsLine(const WireEnvStats& stats) {
  char buffer[384];
  std::snprintf(buffer, sizeof(buffer),
                "ENV %s shard=%llu live=%d generation=%llu epoch=%llu "
                "delta=%llu tombstones=%llu compactions=%llu base_q=%llu "
                "base_p=%llu",
                stats.name.c_str(),
                static_cast<unsigned long long>(stats.shard),
                stats.live ? 1 : 0,
                static_cast<unsigned long long>(stats.generation),
                static_cast<unsigned long long>(stats.epoch),
                static_cast<unsigned long long>(stats.delta),
                static_cast<unsigned long long>(stats.tombstones),
                static_cast<unsigned long long>(stats.compactions),
                static_cast<unsigned long long>(stats.base_q),
                static_cast<unsigned long long>(stats.base_p));
  return buffer;
}

Status ParseEnvStatsLine(const std::string& line, WireEnvStats* out) {
  *out = WireEnvStats{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() < 2 || tokens[0] != "ENV") {
    return Status::InvalidArgument("ENV line wants 'ENV name key=N ...'");
  }
  if (!IsEnvName(tokens[1])) {
    return Status::InvalidArgument("invalid env name '" + tokens[1] + "'");
  }
  out->name = tokens[1];
  struct Field {
    const char* key;
    uint64_t* slot;
  };
  uint64_t live = 0;
  const Field fields[] = {
      {"shard", &out->shard},           {"live", &live},
      {"generation", &out->generation}, {"epoch", &out->epoch},
      {"delta", &out->delta},           {"tombstones", &out->tombstones},
      {"compactions", &out->compactions},
      {"base_q", &out->base_q},         {"base_p", &out->base_p},
  };
  constexpr size_t kFieldCount = sizeof(fields) / sizeof(fields[0]);
  bool seen[kFieldCount] = {};
  for (size_t i = 2; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("ENV field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    size_t slot = kFieldCount;
    for (size_t f = 0; f < kFieldCount; ++f) {
      if (key == fields[f].key) {
        slot = f;
        break;
      }
    }
    if (slot == kFieldCount) {
      return Status::InvalidArgument("unknown ENV key '" + key + "'");
    }
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate ENV key '" + key + "'");
    }
    seen[slot] = true;
    RINGJOIN_RETURN_IF_ERROR(ParseUint64Field(key, value, fields[slot].slot));
  }
  for (bool present : seen) {
    if (!present) {
      return Status::InvalidArgument("ENV line is missing fields");
    }
  }
  if (live > 1) {
    return Status::InvalidArgument("ENV field 'live' wants 0 or 1");
  }
  out->live = live != 0;
  return Status::OK();
}

std::string FormatStatsEndLine(uint64_t shards, uint64_t envs) {
  return "ENDSTATS shards=" + std::to_string(shards) +
         " envs=" + std::to_string(envs);
}

Status ParseStatsEndLine(const std::string& line, uint64_t* shards,
                         uint64_t* envs) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() != 3 || tokens[0] != "ENDSTATS" ||
      tokens[1].rfind("shards=", 0) != 0 ||
      tokens[2].rfind("envs=", 0) != 0) {
    return Status::InvalidArgument(
        "ENDSTATS line wants 'ENDSTATS shards=N envs=N'");
  }
  RINGJOIN_RETURN_IF_ERROR(
      ParseUint64Field("shards", tokens[1].substr(7), shards));
  return ParseUint64Field("envs", tokens[2].substr(5), envs);
}

const char* MutationOpWireName(WireMutationOp op) {
  switch (op) {
    case WireMutationOp::kInsert:
      return "insert";
    case WireMutationOp::kDelete:
      return "delete";
    case WireMutationOp::kCompact:
      return "compact";
  }
  return "?";
}

bool ParseMutationOpName(const std::string& name, WireMutationOp* op) {
  for (WireMutationOp candidate :
       {WireMutationOp::kInsert, WireMutationOp::kDelete,
        WireMutationOp::kCompact}) {
    if (name == MutationOpWireName(candidate)) {
      *op = candidate;
      return true;
    }
  }
  return false;
}

bool IsMutationRequestLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return !tokens.empty() &&
         (tokens[0] == "INSERT" || tokens[0] == "DELETE" ||
          tokens[0] == "COMPACT");
}

Status ParseMutationLine(const std::string& line, WireMutation* out) {
  *out = WireMutation{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return Status::InvalidArgument(
        "mutation must start with INSERT, DELETE, or COMPACT");
  }
  if (tokens[0] == "INSERT") {
    out->op = WireMutationOp::kInsert;
  } else if (tokens[0] == "DELETE") {
    out->op = WireMutationOp::kDelete;
  } else if (tokens[0] == "COMPACT") {
    out->op = WireMutationOp::kCompact;
  } else {
    return Status::InvalidArgument(
        "mutation must start with INSERT, DELETE, or COMPACT");
  }
  const bool wants_point = out->op == WireMutationOp::kInsert;
  const bool wants_id = out->op != WireMutationOp::kCompact;

  // seen slots: env, side, id, x, y.
  bool seen[5] = {};
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& field = tokens[i];
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("field '" + field +
                                     "' is not key=value");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    Status status = Status::OK();
    int slot = -1;
    if (key == "env") {
      slot = 0;
      if (!IsEnvName(value)) {
        status = Status::InvalidArgument("invalid env name '" + value + "'");
      } else {
        out->env_name = value;
      }
    } else if (key == "side" && wants_id) {
      slot = 1;
      if (!ParseLiveSideName(value, &out->side)) {
        status = Status::InvalidArgument("field 'side' wants q|p, got '" +
                                         value + "'");
      }
    } else if (key == "id" && wants_id) {
      slot = 2;
      status = ParseInt64Field(key, value, &out->rec.id);
    } else if (key == "x" && wants_point) {
      slot = 3;
      status = ParseDoubleField(key, value, &out->rec.pt.x);
    } else if (key == "y" && wants_point) {
      slot = 4;
      status = ParseDoubleField(key, value, &out->rec.pt.y);
    } else {
      status = Status::InvalidArgument("unknown " +
                                       std::string(tokens[0]) + " key '" +
                                       key + "'");
    }
    if (!status.ok()) return status;
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate key '" + key + "'");
    }
    seen[slot] = true;
  }
  const int required_from = 1;
  const int required_to = wants_point ? 4 : (wants_id ? 2 : 0);
  for (int slot = required_from; slot <= required_to; ++slot) {
    if (!seen[slot]) {
      static const char* kNames[] = {"env", "side", "id", "x", "y"};
      return Status::InvalidArgument(std::string(tokens[0]) +
                                     " is missing field '" + kNames[slot] +
                                     "'");
    }
  }
  return Status::OK();
}

std::string FormatMutationLine(const WireMutation& mutation) {
  std::string line;
  switch (mutation.op) {
    case WireMutationOp::kInsert:
      line = "INSERT";
      break;
    case WireMutationOp::kDelete:
      line = "DELETE";
      break;
    case WireMutationOp::kCompact:
      line = "COMPACT";
      break;
  }
  const WireMutation defaults;
  if (mutation.env_name != defaults.env_name) {
    line += " env=" + mutation.env_name;
  }
  if (mutation.op != WireMutationOp::kCompact) {
    line += std::string(" side=") + LiveSideName(mutation.side);
    line += " id=" + std::to_string(mutation.rec.id);
  }
  if (mutation.op == WireMutationOp::kInsert) {
    line += " x=" + FormatDouble(mutation.rec.pt.x);
    line += " y=" + FormatDouble(mutation.rec.pt.y);
  }
  return line;
}

std::string FormatMutationAckLine(const WireMutationAck& ack) {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "MUT op=%s env=%s epoch=%llu generation=%llu delta=%llu "
                "tombstones=%llu compactions=%llu",
                MutationOpWireName(ack.op), ack.env_name.c_str(),
                static_cast<unsigned long long>(ack.epoch),
                static_cast<unsigned long long>(ack.generation),
                static_cast<unsigned long long>(ack.delta),
                static_cast<unsigned long long>(ack.tombstones),
                static_cast<unsigned long long>(ack.compactions));
  return buffer;
}

Status ParseMutationAckLine(const std::string& line, WireMutationAck* out) {
  *out = WireMutationAck{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "MUT") {
    return Status::InvalidArgument("MUT line must start with MUT");
  }
  // seen slots: op, env, epoch, generation, delta, tombstones, compactions.
  bool seen[7] = {};
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("MUT field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    Status status = Status::OK();
    int slot = -1;
    if (key == "op") {
      slot = 0;
      if (!ParseMutationOpName(value, &out->op)) {
        status = Status::InvalidArgument(
            "unknown op '" + value + "' (want insert|delete|compact)");
      }
    } else if (key == "env") {
      slot = 1;
      if (!IsEnvName(value)) {
        status = Status::InvalidArgument("invalid env name '" + value + "'");
      } else {
        out->env_name = value;
      }
    } else if (key == "epoch") {
      slot = 2;
      status = ParseUint64Field(key, value, &out->epoch);
    } else if (key == "generation") {
      slot = 3;
      status = ParseUint64Field(key, value, &out->generation);
    } else if (key == "delta") {
      slot = 4;
      status = ParseUint64Field(key, value, &out->delta);
    } else if (key == "tombstones") {
      slot = 5;
      status = ParseUint64Field(key, value, &out->tombstones);
    } else if (key == "compactions") {
      slot = 6;
      status = ParseUint64Field(key, value, &out->compactions);
    } else {
      return Status::InvalidArgument("unknown MUT key '" + key + "'");
    }
    if (!status.ok()) return status;
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate MUT key '" + key + "'");
    }
    seen[slot] = true;
  }
  for (bool present : seen) {
    if (!present) {
      return Status::InvalidArgument("MUT line is missing fields");
    }
  }
  return Status::OK();
}

bool IsValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

namespace {

/// Span names share the trace-id charset (they travel as bare tokens).
bool IsValidSpanName(const std::string& name) { return IsValidTraceId(name); }

}  // namespace

bool IsTraceLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return !tokens.empty() && tokens[0] == "TRACE";
}

std::string FormatTraceLine(const WireTraceSpan& span) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "TRACE id=%s depth=%llu span=%s count=%llu total_s=%.9g "
                "start_s=%.9g",
                span.id.c_str(),
                static_cast<unsigned long long>(span.depth),
                span.span.c_str(),
                static_cast<unsigned long long>(span.count), span.total_s,
                span.start_s);
  return buffer;
}

Status ParseTraceLine(const std::string& line, WireTraceSpan* out) {
  *out = WireTraceSpan{};
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "TRACE") {
    return Status::InvalidArgument("TRACE line must start with TRACE");
  }
  // seen slots: id, depth, span, count, total_s, start_s.
  bool seen[6] = {};
  for (size_t i = 1; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("TRACE field '" + tokens[i] +
                                     "' is not key=value");
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    Status status = Status::OK();
    int slot = -1;
    if (key == "id") {
      slot = 0;
      if (!IsValidTraceId(value)) {
        status = Status::InvalidArgument("invalid trace id '" + value + "'");
      } else {
        out->id = value;
      }
    } else if (key == "depth") {
      slot = 1;
      status = ParseUint64Field(key, value, &out->depth);
    } else if (key == "span") {
      slot = 2;
      if (!IsValidSpanName(value)) {
        status = Status::InvalidArgument("invalid span name '" + value +
                                         "'");
      } else {
        out->span = value;
      }
    } else if (key == "count") {
      slot = 3;
      status = ParseUint64Field(key, value, &out->count);
    } else if (key == "total_s") {
      slot = 4;
      status = ParseDoubleField(key, value, &out->total_s);
    } else if (key == "start_s") {
      slot = 5;
      status = ParseDoubleField(key, value, &out->start_s);
    } else {
      return Status::InvalidArgument("unknown TRACE key '" + key + "'");
    }
    if (!status.ok()) return status;
    if (seen[slot]) {
      return Status::InvalidArgument("duplicate TRACE key '" + key + "'");
    }
    seen[slot] = true;
  }
  for (bool present : seen) {
    if (!present) {
      return Status::InvalidArgument("TRACE line is missing fields");
    }
  }
  return Status::OK();
}

bool IsTraceEndLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return !tokens.empty() && tokens[0] == "ENDTRACE";
}

std::string FormatTraceEndLine(const std::string& id, uint64_t spans) {
  return "ENDTRACE id=" + id + " spans=" + std::to_string(spans);
}

Status ParseTraceEndLine(const std::string& line, std::string* id,
                         uint64_t* spans) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() != 3 || tokens[0] != "ENDTRACE" ||
      tokens[1].rfind("id=", 0) != 0 ||
      tokens[2].rfind("spans=", 0) != 0) {
    return Status::InvalidArgument(
        "ENDTRACE line wants 'ENDTRACE id=token spans=N'");
  }
  const std::string id_value = tokens[1].substr(3);
  if (!IsValidTraceId(id_value)) {
    return Status::InvalidArgument("invalid trace id '" + id_value + "'");
  }
  *id = id_value;
  return ParseUint64Field("spans", tokens[2].substr(6), spans);
}

bool IsMetricsRequestLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return tokens.size() == 1 && tokens[0] == "METRICS";
}

std::string FormatMetricsEndLine(uint64_t lines) {
  return "ENDMETRICS lines=" + std::to_string(lines);
}

Status ParseMetricsEndLine(const std::string& line, uint64_t* lines) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() != 2 || tokens[0] != "ENDMETRICS" ||
      tokens[1].rfind("lines=", 0) != 0) {
    return Status::InvalidArgument(
        "ENDMETRICS line wants 'ENDMETRICS lines=N'");
  }
  return ParseUint64Field("lines", tokens[1].substr(6), lines);
}

bool IsEpochRequestLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return !tokens.empty() && tokens[0] == "EPOCH";
}

std::string FormatEpochRequestLine(const std::string& env_name) {
  if (env_name == "default") return "EPOCH";
  return "EPOCH env=" + env_name;
}

Status ParseEpochRequestLine(const std::string& line, std::string* env_name) {
  *env_name = "default";
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0] != "EPOCH" || tokens.size() > 2) {
    return Status::InvalidArgument("EPOCH request wants 'EPOCH [env=name]'");
  }
  if (tokens.size() == 2) {
    if (tokens[1].rfind("env=", 0) != 0 || !IsEnvName(tokens[1].substr(4))) {
      return Status::InvalidArgument("EPOCH request wants 'EPOCH [env=name]'");
    }
    *env_name = tokens[1].substr(4);
  }
  return Status::OK();
}

std::string FormatEpochResponseLine(const std::string& env_name,
                                    uint64_t epoch) {
  return "EPOCH env=" + env_name + " epoch=" + std::to_string(epoch);
}

Status ParseEpochResponseLine(const std::string& line, std::string* env_name,
                              uint64_t* epoch) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() != 3 || tokens[0] != "EPOCH" ||
      tokens[1].rfind("env=", 0) != 0 ||
      tokens[2].rfind("epoch=", 0) != 0) {
    return Status::InvalidArgument(
        "EPOCH response wants 'EPOCH env=name epoch=N'");
  }
  const std::string name = tokens[1].substr(4);
  if (!IsEnvName(name)) {
    return Status::InvalidArgument("invalid env name '" + name + "'");
  }
  *env_name = name;
  return ParseUint64Field("epoch", tokens[2].substr(6), epoch);
}

bool IsFailpointRequestLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  return !tokens.empty() && tokens[0] == "FAILPOINT";
}

std::string FormatFailpointLine(const std::string& site,
                                const std::string& spec) {
  return "FAILPOINT " + site + " " + spec;
}

Status ParseFailpointLine(const std::string& line, std::string* site,
                          std::string* spec) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.size() < 3 || tokens[0] != "FAILPOINT") {
    return Status::InvalidArgument(
        "FAILPOINT request wants 'FAILPOINT site spec...'");
  }
  // Sites share the trace-id charset: bare tokens, no '=' ambiguity.
  if (!IsValidTraceId(tokens[1])) {
    return Status::InvalidArgument("invalid failpoint site '" + tokens[1] +
                                   "'");
  }
  *site = tokens[1];
  spec->clear();
  for (size_t i = 2; i < tokens.size(); ++i) {
    if (i > 2) *spec += ' ';
    *spec += tokens[i];
  }
  return Status::OK();
}

Status ParseErrLine(const std::string& line, Status* out) {
  std::string trimmed = line;
  while (!trimmed.empty() &&
         (trimmed.back() == '\n' || trimmed.back() == '\r')) {
    trimmed.pop_back();
  }
  if (trimmed.rfind("ERR ", 0) != 0) {
    return Status::InvalidArgument("ERR line must start with 'ERR '");
  }
  const size_t token_begin = 4;
  size_t token_end = trimmed.find(' ', token_begin);
  if (token_end == std::string::npos) token_end = trimmed.size();
  StatusCode code;
  if (!ParseStatusCodeWireName(
          trimmed.substr(token_begin, token_end - token_begin), &code)) {
    return Status::InvalidArgument("unknown ERR code in '" + trimmed + "'");
  }
  std::string message;
  if (token_end < trimmed.size()) message = trimmed.substr(token_end + 1);
  *out = MakeStatus(code, std::move(message));
  return Status::OK();
}

}  // namespace net
}  // namespace rcj
