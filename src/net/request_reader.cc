#include "net/request_reader.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace rcj {
namespace net {
namespace {

/// Moves bytes from `*carry` into `*line` up to the first newline.
/// True when a full line was assembled.
bool TakeLineFromCarry(std::string* carry, std::string* line) {
  const size_t newline = carry->find('\n');
  if (newline == std::string::npos) {
    line->append(*carry);
    carry->clear();
    return false;
  }
  line->append(*carry, 0, newline);
  carry->erase(0, newline + 1);
  return true;
}

}  // namespace

Status ReadRequestLine(int fd, const RequestReadOptions& options,
                       const std::atomic<bool>* stop, std::string* carry,
                       std::string* line, bool* clean_eof,
                       bool* idle_closed) {
  line->clear();
  if (clean_eof) *clean_eof = false;
  if (idle_closed) *idle_closed = false;
  if (TakeLineFromCarry(carry, line)) {
    if (line->size() > options.max_request_bytes) {
      return Status::InvalidArgument(
          "request line exceeds " +
          std::to_string(options.max_request_bytes) + " bytes");
    }
    return Status::OK();
  }
  // Wall-clock deadline: a slow-drip client that keeps the socket readable
  // must still run out of time, or it pins a handler thread forever.
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::milliseconds(options.request_timeout_ms);
  const auto idle_deadline =
      start + std::chrono::milliseconds(options.idle_timeout_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    // The idle reaper only applies while not a single byte of the next
    // request has arrived (carry included, via the initial line fill): a
    // peer that started typing is governed by the request timeout alone.
    if (options.idle_timeout_ms > 0 && line->empty() &&
        now >= idle_deadline) {
      if (idle_closed) *idle_closed = true;
      return Status::InvalidArgument(
          "connection idle for " +
          std::to_string(options.idle_timeout_ms) + " ms");
    }
    if (now >= deadline ||
        (stop && stop->load(std::memory_order_relaxed))) {
      return Status::InvalidArgument("timed out waiting for request line");
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) {
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready <= 0) continue;
    char buffer[512];
    const ssize_t got = recv(fd, buffer, sizeof(buffer), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (got == 0) {
      if (clean_eof && line->empty()) *clean_eof = true;
      return Status::InvalidArgument(
          "connection closed before a full request line");
    }
    const char* newline =
        static_cast<const char*>(memchr(buffer, '\n', static_cast<size_t>(got)));
    if (newline) {
      line->append(buffer, newline - buffer);
      // Bytes past the newline belong to the *next* request of a batch;
      // park them for the following call instead of dropping them.
      carry->append(newline + 1, buffer + got - (newline + 1));
    } else {
      line->append(buffer, static_cast<size_t>(got));
    }
    if (line->size() > options.max_request_bytes) {
      return Status::InvalidArgument(
          "request line exceeds " +
          std::to_string(options.max_request_bytes) + " bytes");
    }
    if (newline) return Status::OK();
  }
}

}  // namespace net
}  // namespace rcj
