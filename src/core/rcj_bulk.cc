#include "core/rcj_bulk.h"

#include "core/filter.h"
#include "core/rcj_inj.h"
#include "core/verify.h"

namespace rcj {

Status RunBulkJoin(const RTree& tq, const RTree& tp,
                   const BulkJoinOptions& options, PairSink* sink,
                   JoinStats* stats) {
  uint64_t emitted = 0;

  std::vector<uint64_t> leaf_pages;
  if (options.leaf_pages == nullptr) {
    RINGJOIN_RETURN_IF_ERROR(
        LeafPagesInOrder(tq, options.order, options.random_seed,
                         &leaf_pages));
  }
  const std::vector<uint64_t>& pages =
      options.leaf_pages != nullptr ? *options.leaf_pages : leaf_pages;

  BulkFilterOptions filter_options;
  filter_options.symmetric_pruning = options.symmetric_pruning;
  filter_options.self_join = options.self_join;

  const DeltaOverlay* overlay = options.overlay;
  const std::unordered_set<PointId>* dead_q =
      overlay != nullptr ? overlay->dead_or_null(LiveSide::kQ) : nullptr;
  const std::unordered_set<PointId>* dead_p = nullptr;
  if (overlay != nullptr) {
    dead_p = options.self_join ? dead_q : overlay->dead_or_null(LiveSide::kP);
  }

  std::vector<PointRecord> group;
  std::vector<std::vector<PointRecord>> per_q;
  std::vector<CandidateCircle> circles;

  for (const uint64_t page : pages) {
    Result<Node> leaf = tq.ReadNode(page);
    if (!leaf.ok()) return leaf.status();

    group.clear();
    for (const LeafEntry& entry : leaf.value().points) {
      // Tombstoned leaf members drop out of the group entirely, so a dead
      // sibling never seeds a Lemma-5 symmetric anchor.
      if (dead_q != nullptr && dead_q->count(entry.rec.id) != 0) continue;
      group.push_back(entry.rec);
    }

    RINGJOIN_RETURN_IF_ERROR(
        BulkFilterCandidates(tp, group, filter_options, &per_q, dead_p));
    if (overlay != nullptr) {
      for (size_t i = 0; i < group.size(); ++i) {
        FilterCandidatesFlat(
            overlay->delta(LiveSide::kP), group[i].pt,
            options.self_join ? group[i].id : kInvalidPointId, &per_q[i]);
      }
    }

    circles.clear();
    for (size_t i = 0; i < group.size(); ++i) {
      const PointRecord& q = group[i];
      for (const PointRecord& p : per_q[i]) {
        if (options.self_join && p.id >= q.id) continue;
        circles.push_back(CandidateCircle::Make(p, q));
      }
    }
    stats->candidates += circles.size();

    if (options.verify) {
      RINGJOIN_RETURN_IF_ERROR(
          VerifyMerged(tq, tp, options.self_join, overlay, &circles));
    }
    for (const CandidateCircle& c : circles) {
      if (!c.alive) continue;
      ++emitted;
      if (!sink->Emit(RcjPair{c.p, c.q, c.circle})) {
        stats->results += emitted;
        return Status::OK();  // early termination requested by the sink
      }
    }
  }
  if (options.delta_tail && overlay != nullptr) {
    bool stopped = false;
    RINGJOIN_RETURN_IF_ERROR(RunDeltaTail(tq, tp, options.self_join,
                                          options.verify, *overlay, sink,
                                          &emitted, stats, &stopped));
  }
  stats->results += emitted;
  return Status::OK();
}

}  // namespace rcj
