// Brute-force RCJ: the definitional O(|P| * |Q| * (|P|+|Q|)) nested-loop
// algorithm from the paper's introduction. It is the correctness oracle for
// every indexed algorithm and the "BRUTE" row of Table 4.
#ifndef RINGJOIN_CORE_RCJ_BRUTE_H_
#define RINGJOIN_CORE_RCJ_BRUTE_H_

#include <vector>

#include "common/status.h"
#include "core/pair_sink.h"
#include "core/rcj_types.h"

namespace rcj {

/// All RCJ pairs of P x Q, computed by definition (no index, no pruning),
/// emitted through `sink` in deterministic (p, q) nested-loop order.
/// "Other points" are identified by dataset membership and id, so duplicate
/// coordinates across P and Q behave exactly like the indexed algorithms.
Status BruteForceRcj(const std::vector<PointRecord>& pset,
                     const std::vector<PointRecord>& qset, PairSink* sink);

/// Self-join variant (paper's postbox scenario): P joined with itself.
/// Emits each unordered pair once, with p.id < q.id.
Status BruteForceRcjSelf(const std::vector<PointRecord>& pset,
                         PairSink* sink);

/// Vector-collecting conveniences over the streaming entry points.
std::vector<RcjPair> BruteForceRcj(const std::vector<PointRecord>& pset,
                                   const std::vector<PointRecord>& qset);
std::vector<RcjPair> BruteForceRcjSelf(const std::vector<PointRecord>& pset);

/// True iff the smallest circle enclosing (p, q) contains no point of
/// `others` strictly inside, excluding the entries whose ids appear in
/// (skip_id1, skip_id2). Exposed for tests.
bool PairSatisfiesRingConstraint(const PointRecord& p, const PointRecord& q,
                                 const std::vector<PointRecord>& others,
                                 PointId skip_id1, PointId skip_id2);

}  // namespace rcj

#endif  // RINGJOIN_CORE_RCJ_BRUTE_H_
