// Shared types of the ring-constrained join (RCJ) operator.
#ifndef RINGJOIN_CORE_RCJ_TYPES_H_
#define RINGJOIN_CORE_RCJ_TYPES_H_

#include <cstdint>
#include <vector>

#include "geometry/circle.h"
#include "geometry/point.h"

namespace rcj {

/// One RCJ result: the pair and its smallest enclosing circle. The circle
/// center is the derived "fair middleman" location and the radius its
/// service distance (paper Section 1).
struct RcjPair {
  PointRecord p;
  PointRecord q;
  Circle circle;

  static RcjPair Make(const PointRecord& p, const PointRecord& q) {
    return RcjPair{p, q, Circle::Enclosing(p.pt, q.pt)};
  }
};

/// A candidate pair flowing through the verification step (Algorithm 3).
struct CandidateCircle {
  Circle circle;
  PointRecord p;
  PointRecord q;
  bool alive = true;

  static CandidateCircle Make(const PointRecord& p, const PointRecord& q) {
    return CandidateCircle{Circle::Enclosing(p.pt, q.pt), p, q, true};
  }
};

/// Cost and cardinality counters for one join execution, mirroring the
/// measurements of the paper's Section 5 (Table 4 candidates; I/O time =
/// page faults x 10 ms; CPU time; node accesses).
struct JoinStats {
  uint64_t candidates = 0;     ///< circles submitted to verification.
  uint64_t results = 0;        ///< surviving RCJ pairs.
  uint64_t node_accesses = 0;  ///< logical R-tree node reads (buffer pins).
  uint64_t page_faults = 0;    ///< buffer misses during the join.
  /// Split of page_faults by buffer-pool history: cold_faults are first
  /// touches of pages the executing pool had never cached (the root-path
  /// and compulsory leaf faults a fresh view always pays), warm_faults are
  /// refetches of pages the pool once held and evicted (capacity misses).
  /// cold_faults + warm_faults == page_faults. A serial cold-start run is
  /// all cold; the engine's persistent worker-view cache converts repeat
  /// queries' compulsory faults into hits, which these counters make
  /// observable per query.
  uint64_t cold_faults = 0;
  uint64_t warm_faults = 0;
  double io_seconds = 0.0;     ///< page_faults x ms_per_fault / 1000.
  double cpu_seconds = 0.0;    ///< measured wall time of the join phase.
  /// Measured wall-clock seconds spent in backing-store reads (PageStore::
  /// Read on buffer faults) — real I/O, as opposed to the modeled
  /// `io_seconds`. Near zero on the in-memory backend; genuine device wait
  /// on the file backends. Note: real reads happen inside the timed join,
  /// so `cpu_seconds` (measured wall) already contains this — it is a
  /// breakdown, not an addend.
  double io_wall_seconds = 0.0;

  double total_seconds() const { return io_seconds + cpu_seconds; }
};

/// Leaf visiting order for the index nested loop joins (paper Section 3.4).
enum class SearchOrder {
  kDepthFirst,  ///< depth-first over T_Q: exploits buffer locality.
  kRandom,      ///< shuffled leaf order: the strawman the paper argues against.
};

/// Which RCJ algorithm to run (paper Section 5's competitors).
enum class RcjAlgorithm {
  kBrute,  ///< nested loop + range verification; O(|P||Q|) candidates.
  kInj,    ///< Index Nested Loop Join (Algorithm 5).
  kBij,    ///< Bulk Index Nested Loop Join (Algorithm 6).
  kObj,    ///< BIJ + symmetric Lemma-5 pruning (Section 4.2).
};

inline const char* AlgorithmName(RcjAlgorithm a) {
  switch (a) {
    case RcjAlgorithm::kBrute:
      return "BRUTE";
    case RcjAlgorithm::kInj:
      return "INJ";
    case RcjAlgorithm::kBij:
      return "BIJ";
    case RcjAlgorithm::kObj:
      return "OBJ";
  }
  return "?";
}

}  // namespace rcj

#endif  // RINGJOIN_CORE_RCJ_TYPES_H_
