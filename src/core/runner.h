// High-level entry points: assemble the paper's experimental environment
// (two R*-trees over one shared LRU buffer, sized as a fraction of the total
// tree pages) from raw pointsets, run any RCJ algorithm with a cold buffer,
// and report paper-style statistics.
//
// Environment setup (tree construction, buffer sizing) is deliberately
// separated from execution: Build() is the one-shot expensive phase, after
// which Run() — or the parallel engine's worker views opened over the same
// page stores — can execute any number of algorithm configurations against
// the warm, immutable indexes.
#ifndef RINGJOIN_CORE_RUNNER_H_
#define RINGJOIN_CORE_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/pair_sink.h"
#include "core/query_spec.h"
#include "core/rcj_types.h"
#include "rtree/point_source.h"
#include "rtree/rtree.h"
#include "storage/buffer_manager.h"
#include "storage/cost_model.h"
#include "storage/page_store.h"

namespace rcj {

/// Where an environment's tree pages live.
enum class StorageBackend {
  kMem,   ///< heap pages: zero real I/O, the paper's modeled-cost substrate.
  kFile,  ///< pread(2) page files: real, overlappable device reads.
  kMmap,  ///< the same files read through a shared read-only mmap(2).
};

/// Human-readable backend name ("mem" / "file" / "mmap").
const char* StorageBackendName(StorageBackend backend);

/// Parses "mem" / "file" / "mmap"; returns false on anything else.
bool ParseStorageBackend(const std::string& name, StorageBackend* out);

/// Knobs of one join execution, defaulting to the paper's setup: 1 KiB
/// pages, a shared buffer of 1% of the total tree sizes, 10 ms charged per
/// page fault, OBJ with depth-first search order.
struct RcjRunOptions {
  RcjAlgorithm algorithm = RcjAlgorithm::kObj;
  SearchOrder order = SearchOrder::kDepthFirst;
  bool verify = true;

  /// Backing storage for the built trees. kMem keeps the paper's modeled
  /// I/O; kFile/kMmap put every page in a real file under `storage_dir`,
  /// which is what JoinStats::io_wall_seconds measures.
  StorageBackend storage = StorageBackend::kMem;
  /// Directory for page files and external-build spill runs when
  /// storage != kMem; "" means the current directory.
  std::string storage_dir;
  /// Keep the page files when the environment is destroyed (default:
  /// unlink them — environments own their scratch files).
  bool keep_storage_files = false;

  uint32_t page_size = kDefaultPageSize;
  /// Buffer capacity as a fraction of the page count of both trees.
  double buffer_fraction = 0.01;
  /// Floor on the buffer size. The join's working set is roughly both root
  /// paths plus a few leaf pages (~2 heights + constant); below that the
  /// pool thrashes pathologically, which the paper's (absolutely larger)
  /// setups never hit. 32 pages = 32 KiB at the default page size.
  size_t min_buffer_pages = 32;
  /// STR bulk loading (fast, default) or one-by-one R* insertion.
  bool bulk_load = true;
  RTreeOptions rtree_options;

  uint64_t random_seed = 42;
  double io_ms_per_fault = 10.0;
};

/// Result of one join execution.
struct RcjRunResult {
  std::vector<RcjPair> pairs;
  JoinStats stats;
};

/// The assembled experimental environment. Build once, then Run() any
/// number of algorithm configurations against the same trees; every Run()
/// starts with a cold buffer and fresh statistics, like the paper's
/// per-algorithm measurements.
class RcjEnvironment {
 public:
  /// Builds T_Q over `qset` and T_P over `pset` (note the order: the outer
  /// loop of all algorithms iterates Q, matching the paper's INJ(T_Q, T_P)).
  static Result<std::unique_ptr<RcjEnvironment>> Build(
      const std::vector<PointRecord>& qset,
      const std::vector<PointRecord>& pset, const RcjRunOptions& options);

  /// Builds a single tree self-join environment (postbox scenario).
  static Result<std::unique_ptr<RcjEnvironment>> BuildSelf(
      const std::vector<PointRecord>& set, const RcjRunOptions& options);

  /// Streaming build for pointsets too large to hold in RAM: both trees
  /// are bulk loaded with the external-memory STR loader
  /// (RTree::BulkLoadStrExternal), reading each source once in bounded
  /// batches and spilling sorted runs under `options.storage_dir`. The
  /// resulting trees are byte-identical to Build() on the same points.
  /// Requires `options.bulk_load` (the default) and leaves the resident
  /// qset()/pset() copies empty, so Run() rejects BRUTE on such an
  /// environment. Sources must stay valid for the duration of the call.
  static Result<std::unique_ptr<RcjEnvironment>> BuildExternal(
      PointSource* qsource, PointSource* psource,
      const RcjRunOptions& options);

  /// Unlinks the environment's page files unless the build options said to
  /// keep them.
  ~RcjEnvironment();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(RcjEnvironment);

  /// Streaming primary: runs `spec` cold (cleared buffer, reset stats),
  /// emitting each pair through `sink` as it is found — in the algorithm's
  /// deterministic serial order — and filling `stats` with paper-style
  /// accounting. `spec.limit` caps the stream at the first k pairs and
  /// stops the traversal; a sink returning false does the same. `spec.env`
  /// must be this environment (or null, which binds it automatically).
  Status Run(const QuerySpec& spec, PairSink* sink, JoinStats* stats);

  /// Collecting convenience over the streaming primary: materializes the
  /// (possibly limit-capped) stream into an RcjRunResult.
  Result<RcjRunResult> Run(const QuerySpec& spec);

  /// Legacy shim: runs the per-query fields of `options`
  /// (algorithm/order/verify/seed/io cost — the structural fields were
  /// fixed at Build time) as an unlimited QuerySpec.
  Result<RcjRunResult> Run(const RcjRunOptions& options);

  const RTree& tq() const { return *tq_; }
  const RTree& tp() const { return *tp_; }
  BufferManager& buffer() { return *buffer_; }
  bool self_join() const { return self_join_; }

  /// Process-unique id assigned at Build time. Caches keyed by environment
  /// pointer compare this too, so an environment destroyed and rebuilt at
  /// the same address can never satisfy a stale cache entry (the engine's
  /// persistent worker-view cache relies on it).
  uint64_t generation() const { return generation_; }

  /// Total pages of both trees — the base of the buffer-fraction sizing.
  uint64_t total_tree_pages() const;

  /// Resizes the shared buffer to `fraction` of the total tree pages
  /// (paper Fig. 15's sweep).
  Status SetBufferFraction(double fraction, size_t min_pages = 32);

  const std::vector<PointRecord>& qset() const { return qset_; }
  const std::vector<PointRecord>& pset() const { return pset_; }
  /// False for BuildExternal environments, whose pointsets were never
  /// materialized (BRUTE needs them; the indexed algorithms do not).
  bool resident_pointsets() const { return resident_pointsets_; }
  /// The storage backend the environment was built with.
  StorageBackend storage() const { return storage_; }

  /// Backing stores of the built trees. Build() persists both tree headers,
  /// so additional read-only views can be opened over these stores with
  /// RTree::Open (the engine opens one per task, each with a private buffer
  /// pool). `p_page_store()` is null in self-join mode.
  PageStore* q_page_store() const { return q_store_.get(); }
  PageStore* p_page_store() const { return p_store_.get(); }
  const RTreeOptions& rtree_options() const { return rtree_options_; }

 private:
  RcjEnvironment() = default;

  static Result<std::unique_ptr<RcjEnvironment>> BuildImpl(
      const std::vector<PointRecord>& qset,
      const std::vector<PointRecord>& pset, bool self_join,
      const RcjRunOptions& options);

  /// Shared skeleton of Build/BuildExternal: generation, stores, trees.
  static Result<std::unique_ptr<RcjEnvironment>> PrepareStores(
      bool self_join, const RcjRunOptions& options);
  /// Creates the backend store for `label` ("q"/"p") per `options`.
  Status MakeStore(const RcjRunOptions& options, const std::string& label,
                   std::unique_ptr<PageStore>* store, std::string* path);

  bool self_join_ = false;
  bool resident_pointsets_ = true;
  StorageBackend storage_ = StorageBackend::kMem;
  bool keep_storage_files_ = false;
  uint64_t generation_ = 0;
  RTreeOptions rtree_options_;
  std::unique_ptr<PageStore> q_store_;
  std::unique_ptr<PageStore> p_store_;  // null in self-join mode
  std::string q_path_, p_path_;  // page-file paths ("" for kMem)
  std::unique_ptr<BufferManager> buffer_;
  std::unique_ptr<RTree> tq_;
  std::unique_ptr<RTree> tp_;  // null in self-join mode (alias tq_)
  std::vector<PointRecord> qset_;
  std::vector<PointRecord> pset_;
  IoCostModel cost_model_;
};

/// The repeatable execution core shared by RcjEnvironment::Run and the
/// parallel engine: dispatches `spec.algorithm` over already-built trees,
/// emitting pairs through `sink` and accumulating candidate/result counts
/// into `stats`. Does not touch buffer state or wall clocks — the caller
/// decides cold/warm semantics and time accounting. Only the algorithm
/// knobs of `spec` are consulted: `spec.env` is ignored (the trees are
/// passed explicitly) and `spec.limit` is the caller's to enforce via a
/// LimitSink — the engine runs leaf-range fragments whose in-order prefix
/// is determined only at delivery time. `tq_leaf_subset`, when non-null,
/// restricts the indexed algorithms (INJ/BIJ/OBJ) to that contiguous range
/// of T_Q leaf pages; it must be null for BRUTE. `qset`/`pset` are
/// consulted only by BRUTE (which, under a live overlay, joins the
/// effective sets — base minus tombstones plus delta). `delta_tail` makes
/// the indexed algorithms append `spec.overlay`'s delta-Q tail after their
/// leaf range; exactly one fragment of a query may set it (the serial
/// runner and unsplit engine queries always do).
Status ExecuteRcj(const RTree& tq, const RTree& tp,
                  const std::vector<PointRecord>& qset,
                  const std::vector<PointRecord>& pset, bool self_join,
                  const QuerySpec& spec,
                  const std::vector<uint64_t>* tq_leaf_subset, bool delta_tail,
                  PairSink* sink, JoinStats* stats);

/// One-shot convenience: build an environment and run one algorithm.
Result<RcjRunResult> RunRcj(const std::vector<PointRecord>& qset,
                            const std::vector<PointRecord>& pset,
                            const RcjRunOptions& options = {});

/// One-shot self-join convenience (paper's postbox scenario).
Result<RcjRunResult> RunRcjSelf(const std::vector<PointRecord>& set,
                                const RcjRunOptions& options = {});

/// Sorts pairs by (q.id, p.id) for deterministic comparison and output.
void NormalizePairs(std::vector<RcjPair>* pairs);

}  // namespace rcj

#endif  // RINGJOIN_CORE_RUNNER_H_
