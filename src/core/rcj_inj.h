// Index Nested Loop Join for RCJ (paper Section 3, Algorithms 4 & 5):
// depth-first over the leaves of T_Q; for each point q, Filter() collects
// candidates from T_P, then Verify() checks the enclosing circles against
// both trees.
#ifndef RINGJOIN_CORE_RCJ_INJ_H_
#define RINGJOIN_CORE_RCJ_INJ_H_

#include <vector>

#include "common/status.h"
#include "core/delta_overlay.h"
#include "core/pair_sink.h"
#include "core/rcj_types.h"
#include "rtree/rtree.h"

namespace rcj {

/// Options for the INJ algorithm.
struct InjOptions {
  /// Leaf visiting order on T_Q (Section 3.4; kRandom is the ablation).
  SearchOrder order = SearchOrder::kDepthFirst;
  /// Disable to measure the filter step alone (paper Fig. 14).
  bool verify = true;
  /// T_Q and T_P are the same tree; identity pairs are excluded and each
  /// unordered pair is reported once (p.id < q.id).
  bool self_join = false;
  /// Shuffle seed for SearchOrder::kRandom.
  uint64_t random_seed = 42;
  /// When non-null, visits exactly these T_Q leaf pages in the given order
  /// and ignores `order`/`random_seed`. The parallel engine partitions the
  /// depth-first leaf order into contiguous ranges and hands one range to
  /// each worker; concatenating the workers' outputs in range order yields
  /// the serial result.
  const std::vector<uint64_t>* leaf_pages = nullptr;
  /// Pending mutations of a live environment (null = static join).
  /// Tombstoned T_Q points are skipped, tombstoned T_P points stop being
  /// candidates/anchors/witnesses, and delta records join both roles.
  const DeltaOverlay* overlay = nullptr;
  /// Append the overlay's delta-Q tail after the visited leaves. The serial
  /// runner and unsplit engine queries set this; a split engine query sets
  /// it only on the last leaf chunk, so the merged stream stays identical
  /// across thread counts.
  bool delta_tail = false;
};

/// Algorithm 5 (INJ_DF). Emits each surviving pair through `sink` as soon
/// as its leaf group is verified, in deterministic leaf/point order, and
/// accumulates candidate and result counts into `stats` (I/O and time
/// accounting is done by the caller around this call). Returns OK early,
/// with a prefix of the serial output emitted, when the sink requests
/// termination.
Status RunInj(const RTree& tq, const RTree& tp, const InjOptions& options,
              PairSink* sink, JoinStats* stats);

/// Leaf pages of `tree` in the requested order (shared by INJ and BIJ).
Status LeafPagesInOrder(const RTree& tree, SearchOrder order, uint64_t seed,
                        std::vector<uint64_t>* pages);

}  // namespace rcj

#endif  // RINGJOIN_CORE_RCJ_INJ_H_
