#include "core/query_spec.h"

#include <cmath>
#include <string>

namespace rcj {

Status QuerySpec::Validate() const {
  if (env == nullptr) {
    return Status::InvalidArgument("QuerySpec.env is null");
  }
  switch (algorithm) {
    case RcjAlgorithm::kBrute:
    case RcjAlgorithm::kInj:
    case RcjAlgorithm::kBij:
    case RcjAlgorithm::kObj:
      break;
    default:
      return Status::InvalidArgument(
          "QuerySpec.algorithm is not a known RcjAlgorithm (" +
          std::to_string(static_cast<int>(algorithm)) + ")");
  }
  switch (order) {
    case SearchOrder::kDepthFirst:
    case SearchOrder::kRandom:
      break;
    default:
      return Status::InvalidArgument(
          "QuerySpec.order is not a known SearchOrder (" +
          std::to_string(static_cast<int>(order)) + ")");
  }
  if (!std::isfinite(io_ms_per_fault) || io_ms_per_fault < 0.0) {
    return Status::InvalidArgument(
        "QuerySpec.io_ms_per_fault must be finite and non-negative");
  }
  return Status::OK();
}

}  // namespace rcj
