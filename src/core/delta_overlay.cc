#include "core/delta_overlay.h"

#include <algorithm>

#include "core/filter.h"
#include "geometry/halfplane.h"

namespace rcj {

const char* LiveSideName(LiveSide side) {
  return side == LiveSide::kQ ? "q" : "p";
}

bool ParseLiveSideName(const std::string& name, LiveSide* out) {
  if (name == "q") {
    *out = LiveSide::kQ;
  } else if (name == "p") {
    *out = LiveSide::kP;
  } else {
    return false;
  }
  return true;
}

std::vector<PointRecord> EffectivePointset(
    const std::vector<PointRecord>& base, const DeltaOverlay& overlay,
    LiveSide side) {
  std::vector<PointRecord> out;
  const std::unordered_set<PointId>* dead = overlay.dead_or_null(side);
  out.reserve(base.size() + overlay.delta(side).size());
  for (const PointRecord& rec : base) {
    if (dead != nullptr && dead->count(rec.id) != 0) continue;
    out.push_back(rec);
  }
  for (const PointRecord& rec : overlay.delta(side)) {
    out.push_back(rec);
  }
  return out;
}

void FilterCandidatesFlat(const std::vector<PointRecord>& points,
                          const Point& q, PointId self_skip_id,
                          std::vector<PointRecord>* candidates) {
  if (points.empty()) return;

  // Ascending-distance order with an id tiebreak: the flat analogue of the
  // best-first heap, and deterministic for equal keys.
  std::vector<const PointRecord*> ordered;
  ordered.reserve(points.size());
  for (const PointRecord& rec : points) {
    if (rec.id == self_skip_id) continue;
    ordered.push_back(&rec);
  }
  std::sort(ordered.begin(), ordered.end(),
            [&q](const PointRecord* a, const PointRecord* b) {
              const double da = Dist2(q, a->pt);
              const double db = Dist2(q, b->pt);
              if (da != db) return da < db;
              return a->id < b->id;
            });

  std::vector<PruneRegion> regions;
  for (const PointRecord* rec : ordered) {
    bool pruned = false;
    for (const PruneRegion& region : regions) {
      if (region.PrunesPoint(rec->pt)) {
        pruned = true;
        break;
      }
    }
    if (pruned) continue;
    candidates->push_back(*rec);
    regions.emplace_back(q, rec->pt);
  }
}

void VerifyCandidatesFlat(const std::vector<PointRecord>& points,
                          TreeSide side, bool self_join,
                          std::vector<CandidateCircle>* candidates) {
  if (points.empty()) return;
  for (CandidateCircle& c : *candidates) {
    if (!c.alive) continue;
    for (const PointRecord& rec : points) {
      const bool is_endpoint =
          self_join ? (rec.id == c.p.id || rec.id == c.q.id)
                    : (side == TreeSide::kPSide ? rec.id == c.p.id
                                                : rec.id == c.q.id);
      if (is_endpoint) continue;
      if (StrictlyInsideDiametral(rec.pt, c.p.pt, c.q.pt)) {
        c.alive = false;
        break;
      }
    }
  }
}

Status VerifyMerged(const RTree& tq, const RTree& tp, bool self_join,
                    const DeltaOverlay* overlay,
                    std::vector<CandidateCircle>* circles) {
  const std::unordered_set<PointId>* dead_q =
      overlay != nullptr ? overlay->dead_or_null(LiveSide::kQ) : nullptr;
  if (self_join) {
    RINGJOIN_RETURN_IF_ERROR(
        VerifyCandidates(tq, TreeSide::kQSide, true, circles, dead_q));
    if (overlay != nullptr) {
      VerifyCandidatesFlat(overlay->delta(LiveSide::kQ), TreeSide::kQSide,
                           true, circles);
    }
    return Status::OK();
  }
  const std::unordered_set<PointId>* dead_p =
      overlay != nullptr ? overlay->dead_or_null(LiveSide::kP) : nullptr;
  RINGJOIN_RETURN_IF_ERROR(
      VerifyCandidates(tq, TreeSide::kQSide, false, circles, dead_q));
  RINGJOIN_RETURN_IF_ERROR(
      VerifyCandidates(tp, TreeSide::kPSide, false, circles, dead_p));
  if (overlay != nullptr) {
    VerifyCandidatesFlat(overlay->delta(LiveSide::kQ), TreeSide::kQSide,
                         false, circles);
    VerifyCandidatesFlat(overlay->delta(LiveSide::kP), TreeSide::kPSide,
                         false, circles);
  }
  return Status::OK();
}

Status RunDeltaTail(const RTree& tq, const RTree& tp, bool self_join,
                    bool verify, const DeltaOverlay& overlay, PairSink* sink,
                    uint64_t* emitted, JoinStats* stats, bool* stopped) {
  *stopped = false;
  std::vector<PointRecord> candidates;
  std::vector<CandidateCircle> circles;
  for (const PointRecord& q : overlay.delta(LiveSide::kQ)) {
    candidates.clear();
    // Base partners: the tree filter with tombstones excluded. Live delta
    // ids never collide with live base ids, so the self-skip only matters
    // for the flat scan below (which contains q itself in self-join mode).
    RINGJOIN_RETURN_IF_ERROR(FilterCandidates(
        tp, q.pt, self_join ? q.id : kInvalidPointId, &candidates,
        overlay.dead_or_null(LiveSide::kP)));
    // Delta partners.
    FilterCandidatesFlat(overlay.delta(LiveSide::kP), q.pt,
                         self_join ? q.id : kInvalidPointId, &candidates);

    circles.clear();
    for (const PointRecord& p : candidates) {
      // Self-join: each unordered pair is generated once, from its
      // higher-id endpoint's perspective (same rule as the base kernels;
      // live ids are unique across base and delta).
      if (self_join && p.id >= q.id) continue;
      circles.push_back(CandidateCircle::Make(p, q));
    }
    stats->candidates += circles.size();

    if (verify) {
      RINGJOIN_RETURN_IF_ERROR(
          VerifyMerged(tq, tp, self_join, &overlay, &circles));
    }
    for (const CandidateCircle& c : circles) {
      if (!c.alive) continue;
      ++*emitted;
      if (!sink->Emit(RcjPair{c.p, c.q, c.circle})) {
        *stopped = true;
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace rcj
