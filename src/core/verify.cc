#include "core/verify.h"

namespace rcj {
namespace {

struct VerifyContext {
  const RTree* tree;
  TreeSide side;
  bool self_join;
  const std::unordered_set<PointId>* exclude;  // tombstones; may be null
};

bool ExcludedAtLeaf(const VerifyContext& ctx, const CandidateCircle& c,
                    PointId id) {
  if (ctx.self_join) return id == c.p.id || id == c.q.id;
  return ctx.side == TreeSide::kPSide ? id == c.p.id : id == c.q.id;
}

// Recursive Algorithm 3 over the candidates in `alive` (pointers into the
// caller's vector; the alive flags are shared across sibling recursions so a
// kill in one subtree immediately prunes work in the next).
Status VerifyRec(const VerifyContext& ctx, uint64_t page_no,
                 const std::vector<CandidateCircle*>& alive) {
  Result<Node> node = ctx.tree->ReadNode(page_no);
  if (!node.ok()) return node.status();

  if (node.value().is_leaf()) {
    for (const LeafEntry& e : node.value().points) {
      if (ctx.exclude != nullptr && ctx.exclude->count(e.rec.id) != 0) {
        continue;  // tombstoned: a dead point is not a witness
      }
      for (CandidateCircle* c : alive) {
        if (!c->alive) continue;
        if (StrictlyInsideDiametral(e.rec.pt, c->p.pt, c->q.pt) &&
            !ExcludedAtLeaf(ctx, *c, e.rec.id)) {
          c->alive = false;
        }
      }
    }
    return Status::OK();
  }

  for (const BranchEntry& e : node.value().children) {
    // Face rule: a whole MBR face strictly inside a circle certifies an
    // invalidating point in the subtree (paper Fig. 7d). The certified
    // point cannot be a candidate endpoint: in the exact diametral
    // predicate, endpoints evaluate to 0 — never strictly inside. With an
    // exclude set the rule is unsound — the certified point might be the
    // dead one — so the verifier descends instead.
    std::vector<CandidateCircle*> descend;
    for (CandidateCircle* c : alive) {
      if (!c->alive) continue;
      if (ctx.exclude == nullptr &&
          DiametralContainsRectFace(c->p.pt, c->q.pt, e.mbr)) {
        c->alive = false;
        continue;
      }
      // Conservative traversal bound. The center/radius form can disagree
      // with the exact diametral predicate by ~1 ulp near the boundary, so
      // inflate the radius slightly: visiting one extra subtree is cheap,
      // missing a witness is a correctness bug.
      if (e.mbr.MinDist2(c->circle.center) <
          c->circle.radius2 * (1.0 + 1e-9)) {
        descend.push_back(c);
      }
    }
    if (!descend.empty()) {
      RINGJOIN_RETURN_IF_ERROR(VerifyRec(ctx, e.child, descend));
    }
  }
  return Status::OK();
}

}  // namespace

Status VerifyCandidates(const RTree& tree, TreeSide side, bool self_join,
                        std::vector<CandidateCircle>* candidates,
                        const std::unordered_set<PointId>* exclude) {
  if (tree.height() == 0 || candidates->empty()) return Status::OK();
  std::vector<CandidateCircle*> alive;
  alive.reserve(candidates->size());
  for (CandidateCircle& c : *candidates) {
    if (c.alive) alive.push_back(&c);
  }
  if (alive.empty()) return Status::OK();
  return VerifyRec(VerifyContext{&tree, side, self_join, exclude},
                   tree.root_page(), alive);
}

}  // namespace rcj
