// Bulk Index Nested Loop Join (paper Section 4, Algorithm 6). BIJ computes
// RCJ pairs for all points of one T_Q leaf in a single best-first traversal
// of T_P (Bulk_Filter, Algorithm 7); OBJ additionally seeds the pruning with
// the leaf's own sibling points via the symmetric Lemma-5 rule (Section
// 4.2).
#ifndef RINGJOIN_CORE_RCJ_BULK_H_
#define RINGJOIN_CORE_RCJ_BULK_H_

#include <vector>

#include "common/status.h"
#include "core/delta_overlay.h"
#include "core/pair_sink.h"
#include "core/rcj_types.h"
#include "rtree/rtree.h"

namespace rcj {

/// Options for the bulk join. Defaults give BIJ; `symmetric_pruning = true`
/// gives OBJ.
struct BulkJoinOptions {
  /// Section 4.2's Lemma-5 rule (OBJ).
  bool symmetric_pruning = false;
  /// Disable to measure the filter step alone (paper Fig. 14).
  bool verify = true;
  /// T_Q and T_P are the same tree (see InjOptions::self_join).
  bool self_join = false;
  /// Leaf visiting order on T_Q.
  SearchOrder order = SearchOrder::kDepthFirst;
  uint64_t random_seed = 42;
  /// When non-null, visits exactly these T_Q leaf pages in the given order
  /// and ignores `order`/`random_seed` (see InjOptions::leaf_pages).
  const std::vector<uint64_t>* leaf_pages = nullptr;
  /// Pending live-environment mutations (see InjOptions::overlay).
  const DeltaOverlay* overlay = nullptr;
  /// Append the delta-Q tail after the visited leaves (see
  /// InjOptions::delta_tail).
  bool delta_tail = false;
};

/// Algorithm 6 (BIJ / OBJ). Emits each surviving pair through `sink` as its
/// T_Q leaf group is verified, in deterministic leaf/point order, and
/// accumulates candidate and result counts into `stats`. Returns OK early,
/// with a prefix of the serial output emitted, when the sink requests
/// termination.
Status RunBulkJoin(const RTree& tq, const RTree& tp,
                   const BulkJoinOptions& options, PairSink* sink,
                   JoinStats* stats);

}  // namespace rcj

#endif  // RINGJOIN_CORE_RCJ_BULK_H_
