#include "core/filter.h"

#include <queue>

#include "geometry/halfplane.h"

namespace rcj {
namespace {

// Heap element of the best-first traversal: either a node page or a point.
struct HeapItem {
  double key = 0.0;  // squared mindist from the reference point
  bool is_point = false;
  PointRecord rec;
  uint64_t child_page = 0;
  Rect mbr;  // valid for nodes
};
struct HeapCompare {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return a.key > b.key;
  }
};
using MinHeap = std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare>;

}  // namespace

Status FilterCandidates(const RTree& tp, const Point& q,
                        PointId self_skip_id,
                        std::vector<PointRecord>* candidates,
                        const std::unordered_set<PointId>* exclude) {
  candidates->clear();
  if (tp.height() == 0) return Status::OK();

  // Pruning half-planes of the candidates found so far (Lemmas 1 and 3).
  std::vector<PruneRegion> regions;

  MinHeap heap;
  {
    HeapItem root;
    root.is_point = false;
    root.child_page = tp.root_page();
    root.key = 0.0;
    heap.push(root);
  }

  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();

    bool pruned = false;
    for (const PruneRegion& region : regions) {
      if (top.is_point ? region.PrunesPoint(top.rec.pt)
                       : region.PrunesRect(top.mbr)) {
        pruned = true;
        break;
      }
    }
    if (pruned) continue;

    if (top.is_point) {
      if (top.rec.id == self_skip_id) continue;  // identity in a self-join
      if (exclude != nullptr && exclude->count(top.rec.id) != 0) {
        continue;  // tombstoned: neither a candidate nor an anchor
      }
      candidates->push_back(top.rec);
      regions.emplace_back(q, top.rec.pt);
      continue;
    }

    Result<Node> node = tp.ReadNode(top.child_page);
    if (!node.ok()) return node.status();
    if (node.value().is_leaf()) {
      for (const LeafEntry& e : node.value().points) {
        HeapItem item;
        item.is_point = true;
        item.rec = e.rec;
        item.key = Dist2(q, e.rec.pt);
        heap.push(item);
      }
    } else {
      for (const BranchEntry& e : node.value().children) {
        HeapItem item;
        item.is_point = false;
        item.child_page = e.child;
        item.mbr = e.mbr;
        item.key = e.mbr.MinDist2(q);
        heap.push(item);
      }
    }
  }
  return Status::OK();
}

Status BulkFilterCandidates(const RTree& tp,
                            const std::vector<PointRecord>& qs,
                            const BulkFilterOptions& options,
                            std::vector<std::vector<PointRecord>>*
                                per_q_candidates,
                            const std::unordered_set<PointId>* exclude) {
  const size_t group = qs.size();
  per_q_candidates->assign(group, {});
  if (group == 0 || tp.height() == 0) return Status::OK();

  // Centroid of the group: the single reference point of the traversal
  // order (Algorithm 7 examines T_P in ascending distance from it).
  Point centroid{0.0, 0.0};
  for (const PointRecord& q : qs) {
    centroid.x += q.pt.x;
    centroid.y += q.pt.y;
  }
  centroid.x /= static_cast<double>(group);
  centroid.y /= static_cast<double>(group);

  // anchors[i]: pruning half-planes usable for qs[i]. With symmetric
  // pruning (Section 4.2) the sibling points of the leaf seed the anchor
  // sets before any candidate from P has been discovered.
  std::vector<std::vector<PruneRegion>> anchors(group);
  if (options.symmetric_pruning) {
    for (size_t i = 0; i < group; ++i) {
      for (size_t j = 0; j < group; ++j) {
        if (i == j || qs[i].pt == qs[j].pt) continue;
        anchors[i].emplace_back(qs[i].pt, qs[j].pt);
      }
    }
  }

  auto pruned_for = [&](size_t i, const HeapItem& item) {
    for (const PruneRegion& region : anchors[i]) {
      if (item.is_point ? region.PrunesPoint(item.rec.pt)
                        : region.PrunesRect(item.mbr)) {
        return true;
      }
    }
    return false;
  };

  MinHeap heap;
  {
    HeapItem root;
    root.is_point = false;
    root.child_page = tp.root_page();
    root.key = 0.0;
    heap.push(root);
  }

  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();

    // Discard the entry only if it is prunable with respect to *every*
    // group member (Algorithm 7, line 7).
    bool prunable_for_all = true;
    for (size_t i = 0; i < group; ++i) {
      if (!pruned_for(i, top)) {
        prunable_for_all = false;
        break;
      }
    }
    if (prunable_for_all) continue;

    if (top.is_point) {
      if (exclude != nullptr && exclude->count(top.rec.id) != 0) {
        continue;  // tombstoned: neither a candidate nor an anchor
      }
      for (size_t i = 0; i < group; ++i) {
        if (options.self_join && top.rec.id == qs[i].id) continue;
        if (!pruned_for(i, top)) {
          (*per_q_candidates)[i].push_back(top.rec);
          anchors[i].emplace_back(qs[i].pt, top.rec.pt);
        }
      }
      continue;
    }

    Result<Node> node = tp.ReadNode(top.child_page);
    if (!node.ok()) return node.status();
    if (node.value().is_leaf()) {
      for (const LeafEntry& e : node.value().points) {
        HeapItem item;
        item.is_point = true;
        item.rec = e.rec;
        item.key = Dist2(centroid, e.rec.pt);
        heap.push(item);
      }
    } else {
      for (const BranchEntry& e : node.value().children) {
        HeapItem item;
        item.is_point = false;
        item.child_page = e.child;
        item.mbr = e.mbr;
        item.key = e.mbr.MinDist2(centroid);
        heap.push(item);
      }
    }
  }
  return Status::OK();
}

}  // namespace rcj
