// Umbrella header: the public API of the ringjoin library.
//
//   #include "core/rcj.h"
//
//   auto result = rcj::RunRcj(restaurants, complexes);   // OBJ by default
//   for (const rcj::RcjPair& pair : result.value().pairs) {
//     // pair.circle.center is the fair middleman location.
//   }
#ifndef RINGJOIN_CORE_RCJ_H_
#define RINGJOIN_CORE_RCJ_H_

#include "core/filter.h"      // IWYU pragma: export
#include "core/pair_sink.h"   // IWYU pragma: export
#include "core/query_spec.h"  // IWYU pragma: export
#include "core/rcj_brute.h"   // IWYU pragma: export
#include "core/rcj_bulk.h"    // IWYU pragma: export
#include "core/rcj_inj.h"     // IWYU pragma: export
#include "core/rcj_types.h"   // IWYU pragma: export
#include "core/runner.h"      // IWYU pragma: export
#include "core/verify.h"      // IWYU pragma: export

#endif  // RINGJOIN_CORE_RCJ_H_
