// Streaming result emission for the ring-constrained join.
//
// The paper's algorithms are inherently incremental: INJ/BIJ/OBJ report
// qualifying (q, p) pairs one at a time as T_Q leaves are visited. PairSink
// is the emission contract that keeps them that way all the way up the
// stack — algorithms push each surviving pair into a sink instead of
// appending to a result vector, so callers can consume pairs as they are
// found, cap a query at its first k results, or forward them to a network
// peer without ever materializing the full join.
#ifndef RINGJOIN_CORE_PAIR_SINK_H_
#define RINGJOIN_CORE_PAIR_SINK_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/rcj_types.h"

namespace rcj {

/// Receiver of streamed RCJ results. Emit() consumes one pair and returns
/// true to keep the join going; returning false requests early termination
/// (the pair passed to the false-returning call was still delivered).
/// Early termination is not an error: the producing algorithm stops its
/// traversal and returns OK, having emitted a prefix of its serial output.
///
/// Sinks are driven by one thread at a time. The engine serializes delivery
/// per query, so a sink shared across queries must itself be thread-safe,
/// but a per-query sink needs no locking.
class PairSink {
 public:
  virtual ~PairSink() = default;

  virtual bool Emit(const RcjPair& pair) = 0;
};

/// Collects every emitted pair into a caller-owned vector; never stops the
/// join. The adapter that turns the streaming API back into the classic
/// materialized result.
class VectorSink final : public PairSink {
 public:
  explicit VectorSink(std::vector<RcjPair>* out) : out_(out) {}

  bool Emit(const RcjPair& pair) override {
    out_->push_back(pair);
    return true;
  }

 private:
  std::vector<RcjPair>* out_;
};

/// Invokes a callback per pair; the callback's return value is the Emit
/// contract (false stops the join).
class CallbackSink final : public PairSink {
 public:
  explicit CallbackSink(std::function<bool(const RcjPair&)> fn)
      : fn_(std::move(fn)) {}

  bool Emit(const RcjPair& pair) override { return fn_(pair); }

 private:
  std::function<bool(const RcjPair&)> fn_;
};

/// Forwards at most `limit` pairs to an inner sink, then requests
/// termination — the top-k adapter. A limit of 0 means unlimited. The call
/// that delivers the limit-th pair already returns false, so a well-behaved
/// producer performs no further work; calls past the limit are not
/// forwarded.
class LimitSink final : public PairSink {
 public:
  LimitSink(PairSink* inner, uint64_t limit) : inner_(inner), limit_(limit) {}

  bool Emit(const RcjPair& pair) override {
    if (limit_ != 0 && forwarded_ >= limit_) return false;
    const bool inner_wants_more = inner_->Emit(pair);
    ++forwarded_;
    return inner_wants_more && (limit_ == 0 || forwarded_ < limit_);
  }

  /// Pairs actually forwarded to the inner sink.
  uint64_t forwarded() const { return forwarded_; }

 private:
  PairSink* inner_;
  uint64_t limit_;
  uint64_t forwarded_ = 0;
};

/// Counts emitted pairs and otherwise discards them — for stats-only
/// queries and tests.
class CountingSink final : public PairSink {
 public:
  bool Emit(const RcjPair&) override {
    ++count_;
    return true;
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace rcj

#endif  // RINGJOIN_CORE_PAIR_SINK_H_
