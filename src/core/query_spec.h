// QuerySpec — the validated description of one RCJ query.
//
// The runner's RcjRunOptions conflates two concerns: structural knobs that
// are fixed when an environment is built (page size, buffer sizing, bulk
// loading) and per-query execution knobs (algorithm, order, verification).
// Every layer that re-used it for the latter had to document which fields
// it actually honored. QuerySpec is the per-query half only, bound to the
// environment it runs against, with an explicit Validate() so malformed
// queries fail fast with a Status instead of being silently reinterpreted.
#ifndef RINGJOIN_CORE_QUERY_SPEC_H_
#define RINGJOIN_CORE_QUERY_SPEC_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "core/rcj_types.h"

namespace rcj {

class RcjEnvironment;
struct DeltaOverlay;

namespace obs {
class TraceContext;
}  // namespace obs

/// One query: which environment to join, which algorithm and knobs to use,
/// and how much of the result stream the caller wants. Plain aggregate —
/// fill the fields, then Validate() before (or let the execution layer
/// validate at) submission.
struct QuerySpec {
  /// The built environment to run against. Must outlive the query's
  /// execution; the executing layer treats it as strictly read-only.
  const RcjEnvironment* env = nullptr;

  /// Pending mutations to merge into the base environment's result (null
  /// for the classic static query). Set by a live environment's snapshot
  /// (src/live/); the overlay must outlive the query's execution, and its
  /// self_join flag must match the environment's. The merged stream keeps
  /// every serial-order guarantee: base leaves first (tombstoned points
  /// skipped), then the delta records in insertion order.
  const DeltaOverlay* overlay = nullptr;

  RcjAlgorithm algorithm = RcjAlgorithm::kObj;
  SearchOrder order = SearchOrder::kDepthFirst;
  /// Disable to measure the filter step alone (paper Fig. 14).
  bool verify = true;
  /// Shuffle seed for SearchOrder::kRandom.
  uint64_t random_seed = 42;

  /// Stop after this many pairs (0 = unlimited). The pairs delivered are
  /// exactly the length-`limit` prefix of the full serial result stream —
  /// the top-k middleman pairs without paying for the full join.
  uint64_t limit = 0;

  /// Milliseconds charged per page fault by the paper's I/O cost model.
  double io_ms_per_fault = 10.0;

  /// Absolute end-to-end deadline on the steady clock; the
  /// default-constructed time_point means "none". Set from the wire's
  /// relative `deadline_ms` at parse time. Enforced in three places:
  /// admission sheds already-expired work with kDeadlineExceeded before
  /// it takes a slot, the engine aborts an in-flight query at the next
  /// leaf-chunk boundary, and a fronting proxy budgets its retries
  /// against the remaining time.
  std::chrono::steady_clock::time_point deadline{};

  /// True when a deadline was set.
  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  /// True when the deadline was set and has passed at `now`.
  bool deadline_expired(std::chrono::steady_clock::time_point now) const {
    return has_deadline() && now >= deadline;
  }

  /// When non-null, every layer the query crosses records timed spans
  /// into this trace (src/obs/trace.h). Non-owning; the context must
  /// outlive the query's execution (submitters keep it until the ticket
  /// resolves). Null — the default — costs the instrumented paths nothing
  /// beyond a pointer check.
  obs::TraceContext* trace = nullptr;

  /// Checks the spec describes an executable query: a bound environment,
  /// a known algorithm and search order, and a finite non-negative I/O
  /// charge. Returns the first violation as InvalidArgument.
  Status Validate() const;

  /// Convenience: a default spec bound to `env`.
  static QuerySpec For(const RcjEnvironment* env) {
    QuerySpec spec;
    spec.env = env;
    return spec;
  }
};

}  // namespace rcj

#endif  // RINGJOIN_CORE_QUERY_SPEC_H_
