#include "core/rcj_brute.h"

namespace rcj {

bool PairSatisfiesRingConstraint(const PointRecord& p, const PointRecord& q,
                                 const std::vector<PointRecord>& others,
                                 PointId skip_id1, PointId skip_id2) {
  for (const PointRecord& o : others) {
    if (o.id == skip_id1 || o.id == skip_id2) continue;
    // Exact diametral predicate; see StrictlyInsideDiametral for why the
    // center/radius form is not used here.
    if (StrictlyInsideDiametral(o.pt, p.pt, q.pt)) return false;
  }
  return true;
}

Status BruteForceRcj(const std::vector<PointRecord>& pset,
                     const std::vector<PointRecord>& qset, PairSink* sink) {
  for (const PointRecord& p : pset) {
    for (const PointRecord& q : qset) {
      // The enclosing circle must contain no other point of P nor of Q.
      if (!PairSatisfiesRingConstraint(p, q, pset, p.id, kInvalidPointId)) {
        continue;
      }
      if (!PairSatisfiesRingConstraint(p, q, qset, q.id, kInvalidPointId)) {
        continue;
      }
      if (!sink->Emit(RcjPair::Make(p, q))) return Status::OK();
    }
  }
  return Status::OK();
}

Status BruteForceRcjSelf(const std::vector<PointRecord>& pset,
                         PairSink* sink) {
  for (size_t i = 0; i < pset.size(); ++i) {
    for (size_t j = i + 1; j < pset.size(); ++j) {
      const PointRecord& a = pset[i];
      const PointRecord& b = pset[j];
      if (!PairSatisfiesRingConstraint(a, b, pset, a.id, b.id)) continue;
      // Normalize order: p.id < q.id.
      const RcjPair pair =
          a.id < b.id ? RcjPair::Make(a, b) : RcjPair::Make(b, a);
      if (!sink->Emit(pair)) return Status::OK();
    }
  }
  return Status::OK();
}

std::vector<RcjPair> BruteForceRcj(const std::vector<PointRecord>& pset,
                                   const std::vector<PointRecord>& qset) {
  std::vector<RcjPair> out;
  VectorSink sink(&out);
  (void)BruteForceRcj(pset, qset, &sink);  // in-memory: cannot fail
  return out;
}

std::vector<RcjPair> BruteForceRcjSelf(const std::vector<PointRecord>& pset) {
  std::vector<RcjPair> out;
  VectorSink sink(&out);
  (void)BruteForceRcjSelf(pset, &sink);  // in-memory: cannot fail
  return out;
}

}  // namespace rcj
