// The delta layer of a live environment (src/live/): everything a merged
// query needs to see mutations that happened after the base trees were
// STR-packed.
//
// A DeltaOverlay is one immutable version of the pending mutations — fresh
// inserts per side (in insertion order, the tail of the merged serial
// stream) and tombstoned base-point ids. LiveEnvironment publishes a new
// version on every mutation (copy-on-write when snapshots still reference
// the old one), so a query holding an overlay pointer sees a frozen epoch
// while mutations continue.
//
// Soundness under deletions is the subtle part. Deleting a point can
// *resurrect* pairs the base join never emitted (the deleted point was the
// witness that invalidated them), so the merged path cannot filter the
// static stream — it re-runs the paper's filter/verify with tombstones
// excluded everywhere a point could act as evidence:
//
//   * Filter pruning anchors must be live: FilterCandidates and
//     BulkFilterCandidates take the tombstone set and never report or
//     anchor on a dead point (a live anchor genuinely invalidates the pairs
//     it prunes, so Lemma-1/3 pruning stays exact).
//   * Verification's MBR face rule is unsound once points are excluded
//     (the face-certified witness might be the dead one), so
//     VerifyCandidates descends instead whenever a tombstone set is given.
//
// The delta lists are small (compaction folds them into a fresh base) and
// RAM-resident, so they are probed with flat-array forms of Algorithm 2
// and Algorithm 3 below; those probes are deliberately outside the paper's
// buffer-pool I/O accounting, exactly like the resident pointsets BRUTE
// reads.
#ifndef RINGJOIN_CORE_DELTA_OVERLAY_H_
#define RINGJOIN_CORE_DELTA_OVERLAY_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/pair_sink.h"
#include "core/rcj_types.h"
#include "core/verify.h"
#include "rtree/rtree.h"

namespace rcj {

/// Which logical dataset of a live environment a mutation targets. A
/// self-join environment has one dataset; both names address it.
enum class LiveSide {
  kQ,
  kP,
};

/// Wire/CLI spelling ("q" / "p").
const char* LiveSideName(LiveSide side);

/// Parses "q" / "p"; returns false on anything else.
bool ParseLiveSideName(const std::string& name, LiveSide* out);

/// One immutable version of a live environment's pending mutations.
/// Published by LiveEnvironment; consumed read-only by the merged query
/// path via QuerySpec::overlay. Plain aggregate — the owning layer
/// enforces the invariants (delta records are live, ids unique per side,
/// tombstones name base points only).
struct DeltaOverlay {
  /// Mutation counter of the owning LiveEnvironment when this version was
  /// published. Monotonic across compactions.
  uint64_t epoch = 0;
  /// Mirrors the base environment; with self_join only the Q side is
  /// populated and both LiveSide names address it.
  bool self_join = false;

  /// Live inserted records, in insertion order — the order the merged
  /// serial stream visits them after the base leaves.
  std::vector<PointRecord> delta_q;
  std::vector<PointRecord> delta_p;

  /// Ids of base points that were deleted. Strictly base ids: deleting a
  /// delta record removes it from its vector instead.
  std::unordered_set<PointId> dead_q;
  std::unordered_set<PointId> dead_p;

  const std::vector<PointRecord>& delta(LiveSide side) const {
    return (side == LiveSide::kQ || self_join) ? delta_q : delta_p;
  }
  std::vector<PointRecord>& mutable_delta(LiveSide side) {
    return (side == LiveSide::kQ || self_join) ? delta_q : delta_p;
  }
  const std::unordered_set<PointId>& dead(LiveSide side) const {
    return (side == LiveSide::kQ || self_join) ? dead_q : dead_p;
  }
  std::unordered_set<PointId>& mutable_dead(LiveSide side) {
    return (side == LiveSide::kQ || self_join) ? dead_q : dead_p;
  }

  /// The tombstone set in the form the filter/verify steps take: null when
  /// empty, which keeps the static fast paths (MBR face rule) enabled.
  const std::unordered_set<PointId>* dead_or_null(LiveSide side) const {
    const std::unordered_set<PointId>& d = dead(side);
    return d.empty() ? nullptr : &d;
  }

  bool empty() const {
    return delta_q.empty() && delta_p.empty() && dead_q.empty() &&
           dead_p.empty();
  }

  /// Pending mutation volume — the auto-compaction trigger.
  uint64_t pending() const {
    return delta_q.size() + delta_p.size() + tombstones();
  }
  uint64_t tombstones() const {
    return self_join ? dead_q.size() : dead_q.size() + dead_p.size();
  }
};

/// The live membership of one side as a plain vector: `base` in its
/// original order minus tombstones, then the delta records in insertion
/// order. What BRUTE joins directly, and what compaction bulk-loads into
/// the replacement base.
std::vector<PointRecord> EffectivePointset(
    const std::vector<PointRecord>& base, const DeltaOverlay& overlay,
    LiveSide side);

/// Algorithm 2 over a flat in-memory array: appends to `candidates` every
/// point of `points` that no nearer kept point prunes via Lemma 1. Points
/// are examined in ascending distance from `q` (ties broken by id, so the
/// appended order is deterministic). `self_skip_id` as in FilterCandidates.
void FilterCandidatesFlat(const std::vector<PointRecord>& points,
                          const Point& q, PointId self_skip_id,
                          std::vector<PointRecord>* candidates);

/// Algorithm 3 over a flat in-memory array: kills every candidate whose
/// circle strictly contains a point of `points` other than the candidate's
/// own `side` endpoint (both endpoints with `self_join`).
void VerifyCandidatesFlat(const std::vector<PointRecord>& points,
                          TreeSide side, bool self_join,
                          std::vector<CandidateCircle>* candidates);

/// The full merged verification block shared by INJ, BIJ/OBJ, and the
/// delta tail: both base trees with tombstone exclusion, then the
/// overlay's delta records. A null overlay degenerates to exactly the
/// static verification (face rule enabled).
Status VerifyMerged(const RTree& tq, const RTree& tp, bool self_join,
                    const DeltaOverlay* overlay,
                    std::vector<CandidateCircle>* circles);

/// The delta tail of a merged query: joins the overlay's delta-Q records,
/// in insertion order, against the full live view (base minus tombstones
/// plus delta). Shared by every indexed kernel — the delta is small and
/// resident, so per-point Algorithm 2 is the right tool regardless of the
/// base algorithm. Emits through `sink`, bumping `*emitted` per pair and
/// `stats->candidates` per circle; sets `*stopped` (and returns OK) when
/// the sink requests early termination.
Status RunDeltaTail(const RTree& tq, const RTree& tp, bool self_join,
                    bool verify, const DeltaOverlay& overlay, PairSink* sink,
                    uint64_t* emitted, JoinStats* stats, bool* stopped);

}  // namespace rcj

#endif  // RINGJOIN_CORE_DELTA_OVERLAY_H_
