#include "core/runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "core/delta_overlay.h"
#include "core/rcj_brute.h"
#include "core/rcj_bulk.h"
#include "core/rcj_inj.h"

namespace rcj {
namespace {

Status BuildTree(RTree* tree, const std::vector<PointRecord>& records,
                 bool bulk_load) {
  if (bulk_load) {
    return tree->BulkLoadStr(records);
  }
  for (const PointRecord& rec : records) {
    RINGJOIN_RETURN_IF_ERROR(tree->Insert(rec));
  }
  return Status::OK();
}

size_t BufferPagesFor(uint64_t total_pages, double fraction,
                      size_t min_pages) {
  const auto pages = static_cast<size_t>(fraction *
                                         static_cast<double>(total_pages));
  return std::max(min_pages, pages);
}

}  // namespace

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMem:
      return "mem";
    case StorageBackend::kFile:
      return "file";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "?";
}

bool ParseStorageBackend(const std::string& name, StorageBackend* out) {
  if (name == "mem") {
    *out = StorageBackend::kMem;
  } else if (name == "file") {
    *out = StorageBackend::kFile;
  } else if (name == "mmap") {
    *out = StorageBackend::kMmap;
  } else {
    return false;
  }
  return true;
}

Status RcjEnvironment::MakeStore(const RcjRunOptions& options,
                                 const std::string& label,
                                 std::unique_ptr<PageStore>* store,
                                 std::string* path) {
  if (options.storage == StorageBackend::kMem) {
    *store = std::make_unique<MemPageStore>(options.page_size);
    path->clear();
    return Status::OK();
  }
  const std::string dir =
      options.storage_dir.empty() ? "." : options.storage_dir;
  *path = dir + "/rcj_env_" + std::to_string(::getpid()) + "_" +
          std::to_string(generation_) + "_" + label + ".pages";
  // RTree::Create needs an empty store; a leftover file from a crashed run
  // must not leak into this environment.
  std::remove(path->c_str());
  if (options.storage == StorageBackend::kFile) {
    Result<std::unique_ptr<FilePageStore>> opened =
        FilePageStore::Open(*path, options.page_size, /*create=*/true);
    if (!opened.ok()) return opened.status();
    *store = std::move(opened).value();
  } else {
    Result<std::unique_ptr<MappedPageStore>> opened =
        MappedPageStore::Open(*path, options.page_size, /*create=*/true);
    if (!opened.ok()) return opened.status();
    *store = std::move(opened).value();
  }
  return Status::OK();
}

Result<std::unique_ptr<RcjEnvironment>> RcjEnvironment::PrepareStores(
    bool self_join, const RcjRunOptions& options) {
  static std::atomic<uint64_t> next_generation{1};
  std::unique_ptr<RcjEnvironment> env(new RcjEnvironment());
  env->generation_ =
      next_generation.fetch_add(1, std::memory_order_relaxed);
  env->self_join_ = self_join;
  env->storage_ = options.storage;
  env->keep_storage_files_ = options.keep_storage_files;
  env->cost_model_.ms_per_fault = options.io_ms_per_fault;
  env->rtree_options_ = options.rtree_options;

  // Build with a generous buffer, then shrink to the experiment size — the
  // paper measures joins, not index construction.
  env->buffer_ = std::make_unique<BufferManager>(1u << 20);

  RINGJOIN_RETURN_IF_ERROR(
      env->MakeStore(options, "q", &env->q_store_, &env->q_path_));
  Result<std::unique_ptr<RTree>> tq =
      RTree::Create(env->q_store_.get(), env->buffer_.get(),
                    options.rtree_options);
  if (!tq.ok()) return tq.status();
  env->tq_ = std::move(tq.value());

  if (!self_join) {
    RINGJOIN_RETURN_IF_ERROR(
        env->MakeStore(options, "p", &env->p_store_, &env->p_path_));
    Result<std::unique_ptr<RTree>> tp =
        RTree::Create(env->p_store_.get(), env->buffer_.get(),
                      options.rtree_options);
    if (!tp.ok()) return tp.status();
    env->tp_ = std::move(tp.value());
  }
  return env;
}

RcjEnvironment::~RcjEnvironment() {
  // Release views and flush the buffer while the stores are still alive,
  // then unlink the scratch page files.
  tp_.reset();
  tq_.reset();
  buffer_.reset();
  p_store_.reset();
  q_store_.reset();
  if (!keep_storage_files_) {
    if (!q_path_.empty()) std::remove(q_path_.c_str());
    if (!p_path_.empty()) std::remove(p_path_.c_str());
  }
}

Result<std::unique_ptr<RcjEnvironment>> RcjEnvironment::BuildImpl(
    const std::vector<PointRecord>& qset,
    const std::vector<PointRecord>& pset, bool self_join,
    const RcjRunOptions& options) {
  Result<std::unique_ptr<RcjEnvironment>> prepared =
      PrepareStores(self_join, options);
  if (!prepared.ok()) return prepared.status();
  std::unique_ptr<RcjEnvironment> env = std::move(prepared).value();
  env->qset_ = qset;
  env->pset_ = self_join ? qset : pset;

  RINGJOIN_RETURN_IF_ERROR(
      BuildTree(env->tq_.get(), env->qset_, options.bulk_load));
  if (!self_join) {
    RINGJOIN_RETURN_IF_ERROR(
        BuildTree(env->tp_.get(), env->pset_, options.bulk_load));
  }

  // Persist both tree headers so the parallel engine can open additional
  // read-only views over the same stores (RTree::Open reads the header
  // page). SetBufferFraction below clears the buffer, which also flushes
  // every constructed page to the stores.
  RINGJOIN_RETURN_IF_ERROR(env->tq_->SaveHeader());
  if (!self_join) {
    RINGJOIN_RETURN_IF_ERROR(env->tp_->SaveHeader());
  }

  RINGJOIN_RETURN_IF_ERROR(env->SetBufferFraction(options.buffer_fraction,
                                                  options.min_buffer_pages));
  // The trees are read-only from here on. Syncing flushes the page files
  // and switches the pread backend into its O_DIRECT read path.
  RINGJOIN_RETURN_IF_ERROR(env->q_store_->Sync());
  if (!self_join) RINGJOIN_RETURN_IF_ERROR(env->p_store_->Sync());
  return env;
}

Result<std::unique_ptr<RcjEnvironment>> RcjEnvironment::BuildExternal(
    PointSource* qsource, PointSource* psource,
    const RcjRunOptions& options) {
  if (!options.bulk_load) {
    return Status::InvalidArgument(
        "BuildExternal requires bulk loading (one-by-one insertion would "
        "need the resident pointset anyway)");
  }
  Result<std::unique_ptr<RcjEnvironment>> prepared =
      PrepareStores(/*self_join=*/false, options);
  if (!prepared.ok()) return prepared.status();
  std::unique_ptr<RcjEnvironment> env = std::move(prepared).value();
  env->resident_pointsets_ = false;

  // The external loader writes each node page exactly once, so a modest
  // build pool suffices regardless of tree size — that bound is the point.
  RINGJOIN_RETURN_IF_ERROR(env->buffer_->Clear());
  RINGJOIN_RETURN_IF_ERROR(env->buffer_->SetCapacity(1u << 16));

  const std::string spill_dir =
      options.storage_dir.empty() ? "." : options.storage_dir;
  RINGJOIN_RETURN_IF_ERROR(
      env->tq_->BulkLoadStrExternal(qsource, spill_dir));
  RINGJOIN_RETURN_IF_ERROR(
      env->tp_->BulkLoadStrExternal(psource, spill_dir));

  RINGJOIN_RETURN_IF_ERROR(env->tq_->SaveHeader());
  RINGJOIN_RETURN_IF_ERROR(env->tp_->SaveHeader());
  RINGJOIN_RETURN_IF_ERROR(env->SetBufferFraction(options.buffer_fraction,
                                                  options.min_buffer_pages));
  // Read-only from here on; arm the pread backend's O_DIRECT path.
  RINGJOIN_RETURN_IF_ERROR(env->q_store_->Sync());
  RINGJOIN_RETURN_IF_ERROR(env->p_store_->Sync());
  return env;
}

Result<std::unique_ptr<RcjEnvironment>> RcjEnvironment::Build(
    const std::vector<PointRecord>& qset,
    const std::vector<PointRecord>& pset, const RcjRunOptions& options) {
  return BuildImpl(qset, pset, /*self_join=*/false, options);
}

Result<std::unique_ptr<RcjEnvironment>> RcjEnvironment::BuildSelf(
    const std::vector<PointRecord>& set, const RcjRunOptions& options) {
  return BuildImpl(set, set, /*self_join=*/true, options);
}

uint64_t RcjEnvironment::total_tree_pages() const {
  uint64_t total = tq_->num_pages();
  if (!self_join_) total += tp_->num_pages();
  return total;
}

Status RcjEnvironment::SetBufferFraction(double fraction, size_t min_pages) {
  RINGJOIN_RETURN_IF_ERROR(buffer_->Clear());
  return buffer_->SetCapacity(
      BufferPagesFor(total_tree_pages(), fraction, min_pages));
}

Status ExecuteRcj(const RTree& tq, const RTree& tp,
                  const std::vector<PointRecord>& qset,
                  const std::vector<PointRecord>& pset, bool self_join,
                  const QuerySpec& spec,
                  const std::vector<uint64_t>* tq_leaf_subset, bool delta_tail,
                  PairSink* sink, JoinStats* stats) {
  const DeltaOverlay* overlay =
      spec.overlay != nullptr && !spec.overlay->empty() ? spec.overlay
                                                        : nullptr;
  switch (spec.algorithm) {
    case RcjAlgorithm::kBrute: {
      if (tq_leaf_subset != nullptr) {
        return Status::InvalidArgument(
            "BRUTE does not traverse T_Q leaves; leaf subsets do not apply");
      }
      const std::vector<PointRecord>* bq = &qset;
      const std::vector<PointRecord>* bp = &pset;
      std::vector<PointRecord> eff_q, eff_p;
      if (overlay != nullptr) {
        eff_q = EffectivePointset(qset, *overlay, LiveSide::kQ);
        bq = &eff_q;
        if (self_join) {
          bp = &eff_q;
        } else {
          eff_p = EffectivePointset(pset, *overlay, LiveSide::kP);
          bp = &eff_p;
        }
      }
      // The in-memory definitional algorithm; candidates = |P| x |Q| by
      // construction (counted up front even if the sink stops the stream).
      stats->candidates += self_join
                               ? bq->size() * (bq->size() - 1) / 2
                               : bp->size() * bq->size();
      uint64_t emitted = 0;
      CallbackSink counting([&emitted, sink](const RcjPair& pair) {
        ++emitted;
        return sink->Emit(pair);
      });
      const Status status = self_join ? BruteForceRcjSelf(*bq, &counting)
                                      : BruteForceRcj(*bp, *bq, &counting);
      stats->results += emitted;
      return status;
    }
    case RcjAlgorithm::kInj: {
      InjOptions inj;
      inj.order = spec.order;
      inj.verify = spec.verify;
      inj.self_join = self_join;
      inj.random_seed = spec.random_seed;
      inj.leaf_pages = tq_leaf_subset;
      inj.overlay = overlay;
      inj.delta_tail = delta_tail;
      return RunInj(tq, tp, inj, sink, stats);
    }
    case RcjAlgorithm::kBij:
    case RcjAlgorithm::kObj: {
      BulkJoinOptions bulk;
      bulk.symmetric_pruning = spec.algorithm == RcjAlgorithm::kObj;
      bulk.verify = spec.verify;
      bulk.self_join = self_join;
      bulk.order = spec.order;
      bulk.random_seed = spec.random_seed;
      bulk.leaf_pages = tq_leaf_subset;
      bulk.overlay = overlay;
      bulk.delta_tail = delta_tail;
      return RunBulkJoin(tq, tp, bulk, sink, stats);
    }
  }
  return Status::InvalidArgument("unknown RCJ algorithm");
}

Status RcjEnvironment::Run(const QuerySpec& spec, PairSink* sink,
                           JoinStats* stats) {
  QuerySpec bound = spec;
  if (bound.env == nullptr) bound.env = this;
  RINGJOIN_RETURN_IF_ERROR(bound.Validate());
  if (bound.env != this) {
    return Status::InvalidArgument(
        "QuerySpec is bound to a different environment");
  }
  if (bound.algorithm == RcjAlgorithm::kBrute && !resident_pointsets_) {
    return Status::InvalidArgument(
        "BRUTE needs the resident pointsets, which an externally built "
        "environment never materializes");
  }
  if (bound.overlay != nullptr && bound.overlay->self_join != self_join_) {
    return Status::InvalidArgument(
        "QuerySpec overlay self-join mode does not match the environment");
  }

  *stats = JoinStats();
  const RTree& tq = *tq_;
  const RTree& tp = self_join_ ? *tq_ : *tp_;

  // Cold start, as in the paper: each algorithm measurement begins with an
  // empty buffer and zeroed counters.
  RINGJOIN_RETURN_IF_ERROR(buffer_->Clear());
  buffer_->ResetStats();

  // The limit is enforced here, at the delivery boundary, so the
  // algorithms stay limit-agnostic: the sink's refusal is what stops the
  // traversal after exactly `limit` pairs of the serial order.
  LimitSink limited(sink, bound.limit);

  const auto start = std::chrono::steady_clock::now();
  const Status status =
      ExecuteRcj(tq, tp, qset_, pset_, self_join_, bound,
                 /*tq_leaf_subset=*/nullptr, /*delta_tail=*/true, &limited,
                 stats);
  if (!status.ok()) return status;
  const auto end = std::chrono::steady_clock::now();

  const BufferStats& buffer_stats = buffer_->stats();
  stats->node_accesses = buffer_stats.logical_accesses;
  stats->page_faults = buffer_stats.page_faults;
  stats->cold_faults = buffer_stats.cold_faults;
  stats->warm_faults = buffer_stats.warm_faults();
  IoCostModel model = cost_model_;
  model.ms_per_fault = bound.io_ms_per_fault;
  stats->io_seconds = model.SecondsFor(buffer_stats);
  stats->io_wall_seconds = buffer_stats.io_wall_seconds;
  stats->cpu_seconds = std::chrono::duration<double>(end - start).count();
  return Status::OK();
}

Result<RcjRunResult> RcjEnvironment::Run(const QuerySpec& spec) {
  RcjRunResult result;
  VectorSink sink(&result.pairs);
  const Status status = Run(spec, &sink, &result.stats);
  if (!status.ok()) return status;
  return result;
}

Result<RcjRunResult> RcjEnvironment::Run(const RcjRunOptions& options) {
  QuerySpec spec = QuerySpec::For(this);
  spec.algorithm = options.algorithm;
  spec.order = options.order;
  spec.verify = options.verify;
  spec.random_seed = options.random_seed;
  spec.io_ms_per_fault = options.io_ms_per_fault;
  return Run(spec);
}

Result<RcjRunResult> RunRcj(const std::vector<PointRecord>& qset,
                            const std::vector<PointRecord>& pset,
                            const RcjRunOptions& options) {
  Result<std::unique_ptr<RcjEnvironment>> env =
      RcjEnvironment::Build(qset, pset, options);
  if (!env.ok()) return env.status();
  return env.value()->Run(options);
}

Result<RcjRunResult> RunRcjSelf(const std::vector<PointRecord>& set,
                                const RcjRunOptions& options) {
  Result<std::unique_ptr<RcjEnvironment>> env =
      RcjEnvironment::BuildSelf(set, options);
  if (!env.ok()) return env.status();
  return env.value()->Run(options);
}

void NormalizePairs(std::vector<RcjPair>* pairs) {
  std::sort(pairs->begin(), pairs->end(),
            [](const RcjPair& a, const RcjPair& b) {
              if (a.q.id != b.q.id) return a.q.id < b.q.id;
              return a.p.id < b.p.id;
            });
}

}  // namespace rcj
