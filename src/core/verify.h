// The verification step (paper Section 3.2, Algorithm 3): checks a set of
// candidate circles concurrently against one R-tree, killing every candidate
// whose circle strictly contains a data point other than its own endpoints.
//
// Non-leaf entries are handled with the paper's three cases: disjoint MBRs
// are skipped; an MBR with a whole face strictly inside a circle certifies
// an invalidating point without descending (the MBR property guarantees a
// data point on each face); intersecting MBRs are descended into.
#ifndef RINGJOIN_CORE_VERIFY_H_
#define RINGJOIN_CORE_VERIFY_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/rcj_types.h"
#include "rtree/rtree.h"

namespace rcj {

/// Which endpoint of each candidate pair lives in the tree being verified —
/// that endpoint is on the circle boundary by construction and must not be
/// treated as an invalidating point.
enum class TreeSide {
  kPSide,  ///< the tree stores dataset P: skip candidate.p.id at leaves.
  kQSide,  ///< the tree stores dataset Q: skip candidate.q.id at leaves.
};

/// Algorithm 3. Marks `alive = false` on every candidate invalidated by a
/// point in `tree`. With `self_join`, both endpoints' ids are skipped (the
/// tree stores the single self-joined dataset).
///
/// `exclude`: tombstoned point ids of a live environment's delta overlay
/// (null for a static join). Excluded points are not witnesses — a dead
/// point must never kill a candidate. A non-null set also disables the MBR
/// face rule: the point the face certifies might be the excluded one, so
/// the verifier descends and checks leaf points individually instead.
Status VerifyCandidates(const RTree& tree, TreeSide side, bool self_join,
                        std::vector<CandidateCircle>* candidates,
                        const std::unordered_set<PointId>* exclude = nullptr);

}  // namespace rcj

#endif  // RINGJOIN_CORE_VERIFY_H_
