// The filter step of the index nested loop join (paper Section 3.1,
// Algorithm 2) and its bulk variant (Section 4.1, Algorithm 7, plus the
// Section 4.2 symmetric pruning rule used by OBJ).
//
// Filter(q, T_P) walks T_P best-first in ascending mindist from q (the
// incremental-NN order of Hjaltason & Samet) and returns every point of P
// that no previously discovered candidate can prune via Lemma 1 (points) /
// Lemma 3 (MBRs). The output is a superset of q's true RCJ partners — the
// verification step removes the rest.
#ifndef RINGJOIN_CORE_FILTER_H_
#define RINGJOIN_CORE_FILTER_H_

#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/rcj_types.h"
#include "rtree/rtree.h"

namespace rcj {

/// Algorithm 2. Retrieves the candidate partners of q from T_P.
///
/// `self_skip_id`: in a self-join T_P contains q itself; pass q's id so the
/// identity point is neither reported nor used as a pruning anchor. Pass
/// kInvalidPointId for a regular (two-dataset) join.
///
/// `exclude`: tombstoned point ids of a live environment's delta overlay
/// (null for a static join). Excluded points are treated exactly like the
/// identity point — never reported and never a pruning anchor — so every
/// remaining anchor is a live point and Lemma-1/3 pruning stays sound.
Status FilterCandidates(const RTree& tp, const Point& q,
                        PointId self_skip_id,
                        std::vector<PointRecord>* candidates,
                        const std::unordered_set<PointId>* exclude = nullptr);

/// Options for the bulk filter.
struct BulkFilterOptions {
  /// Enables the Lemma-5 symmetric pruning rule (Section 4.2): sibling
  /// points of the same T_Q leaf act as pruning anchors even before any
  /// candidate from P is found. This is what turns BIJ into OBJ.
  bool symmetric_pruning = false;
  /// Self-join mode: skip identity points (T_P is the same tree as T_Q).
  bool self_join = false;
};

/// Algorithm 7. One best-first traversal of T_P (ordered by mindist from the
/// centroid of `qs`) retrieves candidate sets for all points of one T_Q leaf
/// concurrently. `per_q_candidates` is resized to qs.size(), aligned with qs.
/// `exclude` as in FilterCandidates; the caller must also drop tombstoned
/// points from `qs` itself (dead siblings must not seed symmetric anchors).
Status BulkFilterCandidates(const RTree& tp,
                            const std::vector<PointRecord>& qs,
                            const BulkFilterOptions& options,
                            std::vector<std::vector<PointRecord>>*
                                per_q_candidates,
                            const std::unordered_set<PointId>* exclude =
                                nullptr);

}  // namespace rcj

#endif  // RINGJOIN_CORE_FILTER_H_
