#include "core/rcj_inj.h"

#include <algorithm>
#include <random>

#include "core/filter.h"
#include "core/verify.h"

namespace rcj {

Status LeafPagesInOrder(const RTree& tree, SearchOrder order, uint64_t seed,
                        std::vector<uint64_t>* pages) {
  pages->clear();
  RINGJOIN_RETURN_IF_ERROR(tree.CollectLeafPages(pages));
  if (order == SearchOrder::kRandom) {
    std::mt19937_64 rng(seed);
    std::shuffle(pages->begin(), pages->end(), rng);
  }
  return Status::OK();
}

Status RunInj(const RTree& tq, const RTree& tp, const InjOptions& options,
              PairSink* sink, JoinStats* stats) {
  uint64_t emitted = 0;
  std::vector<uint64_t> leaf_pages;
  if (options.leaf_pages == nullptr) {
    RINGJOIN_RETURN_IF_ERROR(
        LeafPagesInOrder(tq, options.order, options.random_seed,
                         &leaf_pages));
  }
  const std::vector<uint64_t>& pages =
      options.leaf_pages != nullptr ? *options.leaf_pages : leaf_pages;

  std::vector<PointRecord> candidates;
  std::vector<CandidateCircle> circles;
  for (const uint64_t page : pages) {
    Result<Node> leaf = tq.ReadNode(page);
    if (!leaf.ok()) return leaf.status();

    for (const LeafEntry& entry : leaf.value().points) {
      const PointRecord& q = entry.rec;
      RINGJOIN_RETURN_IF_ERROR(FilterCandidates(
          tp, q.pt, options.self_join ? q.id : kInvalidPointId, &candidates));

      circles.clear();
      for (const PointRecord& p : candidates) {
        // Self-join: each unordered pair is generated once, from its
        // higher-id endpoint's perspective (the filter guarantees every
        // true partner of q is present, so no pair is lost).
        if (options.self_join && p.id >= q.id) continue;
        circles.push_back(CandidateCircle::Make(p, q));
      }
      stats->candidates += circles.size();

      if (options.verify) {
        if (options.self_join) {
          RINGJOIN_RETURN_IF_ERROR(
              VerifyCandidates(tq, TreeSide::kQSide, true, &circles));
        } else {
          RINGJOIN_RETURN_IF_ERROR(
              VerifyCandidates(tq, TreeSide::kQSide, false, &circles));
          RINGJOIN_RETURN_IF_ERROR(
              VerifyCandidates(tp, TreeSide::kPSide, false, &circles));
        }
      }
      for (const CandidateCircle& c : circles) {
        if (!c.alive) continue;
        ++emitted;
        if (!sink->Emit(RcjPair{c.p, c.q, c.circle})) {
          stats->results += emitted;
          return Status::OK();  // early termination requested by the sink
        }
      }
    }
  }
  stats->results += emitted;
  return Status::OK();
}

}  // namespace rcj
