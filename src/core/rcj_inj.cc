#include "core/rcj_inj.h"

#include <algorithm>
#include <random>

#include "core/filter.h"
#include "core/verify.h"

namespace rcj {

Status LeafPagesInOrder(const RTree& tree, SearchOrder order, uint64_t seed,
                        std::vector<uint64_t>* pages) {
  pages->clear();
  RINGJOIN_RETURN_IF_ERROR(tree.CollectLeafPages(pages));
  if (order == SearchOrder::kRandom) {
    std::mt19937_64 rng(seed);
    std::shuffle(pages->begin(), pages->end(), rng);
  }
  return Status::OK();
}

Status RunInj(const RTree& tq, const RTree& tp, const InjOptions& options,
              PairSink* sink, JoinStats* stats) {
  uint64_t emitted = 0;
  std::vector<uint64_t> leaf_pages;
  if (options.leaf_pages == nullptr) {
    RINGJOIN_RETURN_IF_ERROR(
        LeafPagesInOrder(tq, options.order, options.random_seed,
                         &leaf_pages));
  }
  const std::vector<uint64_t>& pages =
      options.leaf_pages != nullptr ? *options.leaf_pages : leaf_pages;

  const DeltaOverlay* overlay = options.overlay;
  const std::unordered_set<PointId>* dead_q =
      overlay != nullptr ? overlay->dead_or_null(LiveSide::kQ) : nullptr;
  const std::unordered_set<PointId>* dead_p = nullptr;
  if (overlay != nullptr) {
    dead_p = options.self_join ? dead_q : overlay->dead_or_null(LiveSide::kP);
  }

  std::vector<PointRecord> candidates;
  std::vector<CandidateCircle> circles;
  for (const uint64_t page : pages) {
    Result<Node> leaf = tq.ReadNode(page);
    if (!leaf.ok()) return leaf.status();

    for (const LeafEntry& entry : leaf.value().points) {
      const PointRecord& q = entry.rec;
      if (dead_q != nullptr && dead_q->count(q.id) != 0) continue;
      RINGJOIN_RETURN_IF_ERROR(FilterCandidates(
          tp, q.pt, options.self_join ? q.id : kInvalidPointId, &candidates,
          dead_p));
      if (overlay != nullptr) {
        FilterCandidatesFlat(overlay->delta(LiveSide::kP), q.pt,
                             options.self_join ? q.id : kInvalidPointId,
                             &candidates);
      }

      circles.clear();
      for (const PointRecord& p : candidates) {
        // Self-join: each unordered pair is generated once, from its
        // higher-id endpoint's perspective (the filter guarantees every
        // true partner of q is present, so no pair is lost).
        if (options.self_join && p.id >= q.id) continue;
        circles.push_back(CandidateCircle::Make(p, q));
      }
      stats->candidates += circles.size();

      if (options.verify) {
        RINGJOIN_RETURN_IF_ERROR(
            VerifyMerged(tq, tp, options.self_join, overlay, &circles));
      }
      for (const CandidateCircle& c : circles) {
        if (!c.alive) continue;
        ++emitted;
        if (!sink->Emit(RcjPair{c.p, c.q, c.circle})) {
          stats->results += emitted;
          return Status::OK();  // early termination requested by the sink
        }
      }
    }
  }
  if (options.delta_tail && overlay != nullptr) {
    bool stopped = false;
    RINGJOIN_RETURN_IF_ERROR(RunDeltaTail(tq, tp, options.self_join,
                                          options.verify, *overlay, sink,
                                          &emitted, stats, &stopped));
  }
  stats->results += emitted;
  return Status::OK();
}

}  // namespace rcj
