#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "core/rcj_inj.h"
#include "storage/buffer_manager.h"
#include "storage/cost_model.h"

namespace rcj {
namespace {

using Clock = std::chrono::steady_clock;

/// A worker's private, read-only window onto one environment's indexes:
/// fresh RTree views over the shared page stores, faulting through a
/// private LRU pool so buffer accounting needs no cross-thread latching.
struct WorkerView {
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<RTree> tq;
  std::unique_ptr<RTree> tp;  // aliases tq for self-joins

  const RTree& tq_ref() const { return *tq; }
  const RTree& tp_ref() const { return tp != nullptr ? *tp : *tq; }
};

Status OpenWorkerView(const RcjEnvironment& env, const EngineOptions& options,
                      WorkerView* view) {
  const auto scaled = static_cast<size_t>(
      options.worker_buffer_fraction *
      static_cast<double>(env.total_tree_pages()));
  const size_t pool_pages =
      std::max(options.worker_min_buffer_pages, scaled);
  view->buffer = std::make_unique<BufferManager>(pool_pages);

  Result<std::unique_ptr<RTree>> tq = RTree::Open(
      env.q_page_store(), view->buffer.get(), env.rtree_options());
  if (!tq.ok()) return tq.status();
  view->tq = std::move(tq).value();

  if (!env.self_join()) {
    Result<std::unique_ptr<RTree>> tp = RTree::Open(
        env.p_page_store(), view->buffer.get(), env.rtree_options());
    if (!tp.ok()) return tp.status();
    view->tp = std::move(tp).value();
  }
  // Opening the views pinned the header pages; reset so the aggregated
  // counters cover exactly the join, like the serial runner's cold start.
  view->buffer->ResetStats();
  return Status::OK();
}

/// Per-query streaming state, shared by the query's leaf-range tasks. Tasks
/// buffer their pairs privately (ranges finish out of order), then hand the
/// buffer to DeliverReadyRanges, which flushes buffers to the delivery sink
/// strictly in range order — so the sink observes the exact serial pair
/// stream, incrementally, as the frontier of completed ranges advances.
struct QueryEmitState {
  std::mutex mu;
  /// Final delivery target: the caller's sink, or an engine-owned
  /// VectorSink into the result slot.
  PairSink* sink = nullptr;
  uint64_t limit = 0;      ///< 0 = unlimited (from QuerySpec::limit).
  uint64_t delivered = 0;  ///< pairs handed to `sink` so far.
  size_t next_range = 0;   ///< first range not yet flushed.
  std::vector<const std::vector<RcjPair>*> buffers;  ///< per-range output.
  std::vector<char> range_done;
  /// True once nothing more may reach the sink: the limit was satisfied,
  /// the sink refused a pair, or an earlier range failed (a later range's
  /// output would no longer be a serial prefix).
  bool delivery_closed = false;
  /// First failure raised by the delivery sink itself (an Emit() that
  /// threw); settled into the query's result status at merge time.
  Status delivery_status;
  /// Relaxed cross-thread signal that remaining work is pointless: queued
  /// tasks skip themselves and running tasks stop at their next emission.
  std::atomic<bool> cancelled{false};
};

/// Task-local sink: buffers into the task's private vector and aborts the
/// traversal as soon as the query was cancelled (limit satisfied elsewhere)
/// or this task has buffered `limit` pairs itself. The per-task cap is
/// sound because delivery is cumulative in range order: once a single
/// range holds `limit` pairs, nothing past them can ever reach the user's
/// sink — so a limit-capped query stops early even when it runs as one
/// task (single worker, small tree, or BRUTE).
class TaskBufferSink final : public PairSink {
 public:
  TaskBufferSink(std::vector<RcjPair>* buffer,
                 const std::atomic<bool>* cancelled, uint64_t limit)
      : buffer_(buffer), cancelled_(cancelled), limit_(limit) {}

  bool Emit(const RcjPair& pair) override {
    if (cancelled_->load(std::memory_order_relaxed)) return false;
    buffer_->push_back(pair);
    return limit_ == 0 || buffer_->size() < limit_;
  }

 private:
  std::vector<RcjPair>* buffer_;
  const std::atomic<bool>* cancelled_;
  uint64_t limit_;
};

/// One schedulable unit: a whole query, or one contiguous leaf range of an
/// indexed query. Filled in by the worker that executes it.
struct EngineTask {
  size_t query_index = 0;
  size_t range_index = 0;
  QueryEmitState* emit = nullptr;
  // Owned copy of this task's T_Q leaf range; null-equivalent (empty, with
  // use_subset false) for single-task queries and BRUTE.
  bool use_subset = false;
  std::vector<uint64_t> leaf_subset;

  Status status;
  std::vector<RcjPair> pairs;
  JoinStats stats;
  BufferStats buffer_stats;
  Clock::time_point start;
  Clock::time_point end;
};

/// Marks `range` complete and flushes every ready range at the frontier to
/// the delivery sink, in order. Called by the worker that finished the
/// range; the per-query mutex serializes delivery, so sinks see one thread
/// at a time. On reaching the limit (or a sink refusal / range failure),
/// closes delivery and raises the cancellation flag for the query's
/// remaining tasks.
void DeliverReadyRanges(QueryEmitState* st, size_t range,
                        const std::vector<RcjPair>* pairs, bool failed) {
  std::lock_guard<std::mutex> lock(st->mu);
  st->range_done[range] = 1;
  st->buffers[range] = failed ? nullptr : pairs;
  if (failed) {
    st->delivery_closed = true;
    st->cancelled.store(true, std::memory_order_relaxed);
  }
  while (st->next_range < st->range_done.size() &&
         st->range_done[st->next_range]) {
    const std::vector<RcjPair>* ready = st->buffers[st->next_range];
    if (!st->delivery_closed && ready != nullptr) {
      // The sink is caller code (or a vector push_back that can hit
      // bad_alloc); a throw must not escape into the thread pool with the
      // frontier half-advanced — convert it to a per-query failure and
      // close delivery, keeping this function's state transitions atomic.
      try {
        for (const RcjPair& pair : *ready) {
          ++st->delivered;
          const bool more = st->sink->Emit(pair);
          const bool at_limit = st->limit != 0 && st->delivered >= st->limit;
          if (!more || at_limit) {
            st->delivery_closed = true;
            st->cancelled.store(true, std::memory_order_relaxed);
            break;
          }
        }
      } catch (const std::exception& e) {
        st->delivery_status =
            Status::IoError(std::string("result sink threw: ") + e.what());
        st->delivery_closed = true;
        st->cancelled.store(true, std::memory_order_relaxed);
      } catch (...) {
        st->delivery_status =
            Status::IoError("result sink threw a non-std exception");
        st->delivery_closed = true;
        st->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    ++st->next_range;
  }
}

void SubmitTasks(const std::vector<EngineQuery>& queries,
                 const EngineOptions& engine_options, ThreadPool* pool,
                 std::vector<EngineTask>* tasks) {
  for (EngineTask& task : *tasks) {
    const EngineQuery& query = queries[task.query_index];
    EngineTask* t = &task;
    pool->Submit([t, &query, &engine_options] {
      t->start = Clock::now();
      // The join code reports errors via Status, but allocation can still
      // throw on oversized result sets; convert to a per-query failure so
      // one starved query never poisons its batchmates (engine.h contract).
      try {
        // An external cancel (service ticket, dropped network peer) joins
        // the internal one here, so even a query that never emits a pair
        // stops at the next leaf-range boundary.
        if (query.cancel != nullptr &&
            query.cancel->load(std::memory_order_relaxed)) {
          t->emit->cancelled.store(true, std::memory_order_relaxed);
        }
        // Skip outright if the query was already satisfied or failed — the
        // cancellation that makes limit-capped queries cheaper than the
        // full join.
        if (!t->emit->cancelled.load(std::memory_order_relaxed)) {
          WorkerView view;
          const RcjEnvironment& env = *query.spec.env;
          t->status = OpenWorkerView(env, engine_options, &view);
          if (t->status.ok()) {
            TaskBufferSink sink(&t->pairs, &t->emit->cancelled,
                                query.spec.limit);
            t->status = ExecuteRcj(view.tq_ref(), view.tp_ref(), env.qset(),
                                   env.pset(), env.self_join(), query.spec,
                                   t->use_subset ? &t->leaf_subset : nullptr,
                                   &sink, &t->stats);
            t->buffer_stats = view.buffer->stats();
          }
        }
      } catch (const std::exception& e) {
        t->status = Status::IoError(std::string("engine task threw: ") +
                                    e.what());
      } catch (...) {
        t->status = Status::IoError("engine task threw a non-std exception");
      }
      DeliverReadyRanges(t->emit, t->range_index, &t->pairs,
                         !t->status.ok());
      t->end = Clock::now();
    });
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), pool_(options.num_threads) {}

Engine::~Engine() = default;

std::vector<EngineQueryResult> Engine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  std::vector<EngineQueryResult> results(queries.size());

  // ---- Plan: expand each query into one or more leaf-range tasks. -------
  // Batches typically repeat the same environment many times; compute each
  // distinct (env, order, seed) leaf order once so the serial planning
  // prefix stays O(distinct environments), not O(queries).
  struct LeafOrder {
    const RcjEnvironment* env;
    SearchOrder order;
    uint64_t seed;
    std::vector<uint64_t> leaves;
  };
  std::vector<LeafOrder> leaf_orders;

  std::vector<EngineTask> tasks;
  std::vector<std::vector<size_t>> tasks_of_query(queries.size());
  // Per-query streaming state and engine-owned collection sinks. Both are
  // stable deques/vectors of pointers referenced by queued lambdas, so they
  // must outlive pool_.WaitIdle() below.
  std::vector<std::unique_ptr<QueryEmitState>> emit_states(queries.size());
  std::vector<std::unique_ptr<VectorSink>> collect_sinks(queries.size());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const EngineQuery& query = queries[qi];
    const Status valid = query.spec.Validate();
    if (!valid.ok()) {
      results[qi].status = valid;
      continue;
    }

    std::vector<std::vector<uint64_t>> ranges;
    if (options_.intra_query_parallelism &&
        query.spec.algorithm != RcjAlgorithm::kBrute &&
        pool_.num_threads() > 1) {
      // The depth-first (or seeded-shuffle) leaf order is computed once
      // here on the caller thread, then split into contiguous ranges, so
      // flushing task outputs in range order equals the serial run.
      const std::vector<uint64_t>* leaves_ptr = nullptr;
      for (const LeafOrder& cached : leaf_orders) {
        if (cached.env == query.spec.env &&
            cached.order == query.spec.order &&
            cached.seed == query.spec.random_seed) {
          leaves_ptr = &cached.leaves;
          break;
        }
      }
      if (leaves_ptr == nullptr) {
        LeafOrder entry;
        entry.env = query.spec.env;
        entry.order = query.spec.order;
        entry.seed = query.spec.random_seed;
        const Status status =
            LeafPagesInOrder(query.spec.env->tq(), query.spec.order,
                             query.spec.random_seed, &entry.leaves);
        if (!status.ok()) {
          results[qi].status = status;
          continue;
        }
        leaf_orders.push_back(std::move(entry));
        leaves_ptr = &leaf_orders.back().leaves;
      }
      const std::vector<uint64_t>& leaves = *leaves_ptr;
      if (leaves.size() >= options_.min_leaves_to_split) {
        const size_t max_tasks = std::max<size_t>(
            1, pool_.num_threads() * options_.tasks_per_thread);
        const size_t num_ranges = std::min(max_tasks, leaves.size());
        ranges.resize(num_ranges);
        // Balanced contiguous split: range sizes differ by at most one.
        const size_t base = leaves.size() / num_ranges;
        const size_t extra = leaves.size() % num_ranges;
        size_t next = 0;
        for (size_t r = 0; r < num_ranges; ++r) {
          const size_t len = base + (r < extra ? 1 : 0);
          ranges[r].assign(leaves.begin() + next,
                           leaves.begin() + next + len);
          next += len;
        }
      }
    }

    emit_states[qi] = std::make_unique<QueryEmitState>();
    QueryEmitState* emit = emit_states[qi].get();
    if (query.sink != nullptr) {
      emit->sink = query.sink;
    } else {
      collect_sinks[qi] = std::make_unique<VectorSink>(&results[qi].run.pairs);
      emit->sink = collect_sinks[qi].get();
    }
    emit->limit = query.spec.limit;
    const size_t num_ranges = ranges.empty() ? 1 : ranges.size();
    emit->buffers.assign(num_ranges, nullptr);
    emit->range_done.assign(num_ranges, 0);

    if (ranges.empty()) {
      EngineTask task;
      task.query_index = qi;
      task.range_index = 0;
      task.emit = emit;
      tasks_of_query[qi].push_back(tasks.size());
      tasks.push_back(std::move(task));
    } else {
      for (size_t r = 0; r < ranges.size(); ++r) {
        EngineTask task;
        task.query_index = qi;
        task.range_index = r;
        task.emit = emit;
        task.use_subset = true;
        task.leaf_subset = std::move(ranges[r]);
        tasks_of_query[qi].push_back(tasks.size());
        tasks.push_back(std::move(task));
      }
    }
  }

  // ---- Execute: one flat task list, so inter- and intra-query work
  // interleaves freely across the pool. Queued lambdas hold pointers into
  // `tasks` and `queries`, so if a Submit() allocation throws mid-loop we
  // must drain the already-queued work before unwinding destroys them.
  try {
    SubmitTasks(queries, options_, &pool_, &tasks);
  } catch (...) {
    pool_.WaitIdle();
    throw;
  }
  pool_.WaitIdle();

  // ---- Merge: delivery already happened in range order as tasks
  // completed; here we aggregate the private pools' fault accounting,
  // charge the paper's I/O cost model, and settle per-query statuses. -----
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!results[qi].status.ok()) continue;  // planning already failed
    EngineQueryResult& result = results[qi];
    double busy_seconds = 0.0;
    for (const size_t ti : tasks_of_query[qi]) {
      const EngineTask& task = tasks[ti];
      if (!task.status.ok()) {
        result.status = task.status;
        break;
      }
      result.run.stats.candidates += task.stats.candidates;
      result.run.stats.node_accesses += task.buffer_stats.logical_accesses;
      result.run.stats.page_faults += task.buffer_stats.page_faults;
      busy_seconds +=
          std::chrono::duration<double>(task.end - task.start).count();
    }
    if (result.status.ok() && !emit_states[qi]->delivery_status.ok()) {
      result.status = emit_states[qi]->delivery_status;
    }
    if (!result.status.ok()) {
      // The caller's sink may have received a serial prefix before the
      // failing range was reached; the status is the source of truth.
      result.run = RcjRunResult();
      continue;
    }
    // Results = pairs actually delivered to the sink (the in-order stream),
    // not the sum of task-local buffers — tasks past a satisfied limit may
    // have buffered pairs that were rightly dropped.
    result.run.stats.results = emit_states[qi]->delivered;
    IoCostModel model;
    model.ms_per_fault = queries[qi].spec.io_ms_per_fault;
    BufferStats aggregated;
    aggregated.page_faults = result.run.stats.page_faults;
    aggregated.logical_accesses = result.run.stats.node_accesses;
    result.run.stats.io_seconds = model.SecondsFor(aggregated);
    // Summed execution time of the query's own tasks — comparable to the
    // serial runner's cpu_seconds and never inflated by other queries'
    // tasks interleaving on the pool. Batch latency is the caller's wall
    // clock around RunBatch.
    result.run.stats.cpu_seconds = busy_seconds;
  }
  return results;
}

Result<RcjRunResult> Engine::Run(const QuerySpec& spec) {
  std::vector<EngineQuery> batch(1);
  batch[0].spec = spec;
  std::vector<EngineQueryResult> results = RunBatch(batch);
  if (!results[0].status.ok()) return results[0].status;
  return std::move(results[0].run);
}

Status Engine::Run(const QuerySpec& spec, PairSink* sink, JoinStats* stats) {
  std::vector<EngineQuery> batch(1);
  batch[0].spec = spec;
  batch[0].sink = sink;
  std::vector<EngineQueryResult> results = RunBatch(batch);
  if (!results[0].status.ok()) return results[0].status;
  *stats = results[0].run.stats;
  return Status::OK();
}

}  // namespace rcj
