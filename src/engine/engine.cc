#include "engine/engine.h"

#include <algorithm>
#include <chrono>

#include "core/rcj_inj.h"
#include "storage/buffer_manager.h"
#include "storage/cost_model.h"

namespace rcj {
namespace {

using Clock = std::chrono::steady_clock;

/// A worker's private, read-only window onto one environment's indexes:
/// fresh RTree views over the shared page stores, faulting through a
/// private LRU pool so buffer accounting needs no cross-thread latching.
struct WorkerView {
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<RTree> tq;
  std::unique_ptr<RTree> tp;  // aliases tq for self-joins

  const RTree& tq_ref() const { return *tq; }
  const RTree& tp_ref() const { return tp != nullptr ? *tp : *tq; }
};

Status OpenWorkerView(const RcjEnvironment& env, const EngineOptions& options,
                      WorkerView* view) {
  const auto scaled = static_cast<size_t>(
      options.worker_buffer_fraction *
      static_cast<double>(env.total_tree_pages()));
  const size_t pool_pages =
      std::max(options.worker_min_buffer_pages, scaled);
  view->buffer = std::make_unique<BufferManager>(pool_pages);

  Result<std::unique_ptr<RTree>> tq = RTree::Open(
      env.q_page_store(), view->buffer.get(), env.rtree_options());
  if (!tq.ok()) return tq.status();
  view->tq = std::move(tq).value();

  if (!env.self_join()) {
    Result<std::unique_ptr<RTree>> tp = RTree::Open(
        env.p_page_store(), view->buffer.get(), env.rtree_options());
    if (!tp.ok()) return tp.status();
    view->tp = std::move(tp).value();
  }
  // Opening the views pinned the header pages; reset so the aggregated
  // counters cover exactly the join, like the serial runner's cold start.
  view->buffer->ResetStats();
  return Status::OK();
}

/// One schedulable unit: a whole query, or one contiguous leaf range of an
/// indexed query. Filled in by the worker that executes it.
struct EngineTask {
  size_t query_index = 0;
  // Owned copy of this task's T_Q leaf range; null-equivalent (empty, with
  // use_subset false) for single-task queries and BRUTE.
  bool use_subset = false;
  std::vector<uint64_t> leaf_subset;

  Status status;
  std::vector<RcjPair> pairs;
  JoinStats stats;
  BufferStats buffer_stats;
  Clock::time_point start;
  Clock::time_point end;
};

bool IsIndexed(RcjAlgorithm algorithm) {
  return algorithm != RcjAlgorithm::kBrute;
}

void SubmitTasks(const std::vector<EngineQuery>& queries,
                 const EngineOptions& engine_options, ThreadPool* pool,
                 std::vector<EngineTask>* tasks) {
  for (EngineTask& task : *tasks) {
    const EngineQuery& query = queries[task.query_index];
    EngineTask* t = &task;
    pool->Submit([t, &query, &engine_options] {
      t->start = Clock::now();
      // The join code reports errors via Status, but allocation can still
      // throw on oversized result sets; convert to a per-query failure so
      // one starved query never poisons its batchmates (engine.h contract).
      try {
        WorkerView view;
        t->status = OpenWorkerView(*query.env, engine_options, &view);
        if (t->status.ok()) {
          t->status = ExecuteRcj(view.tq_ref(), view.tp_ref(),
                                 query.env->qset(), query.env->pset(),
                                 query.env->self_join(), query.options,
                                 t->use_subset ? &t->leaf_subset : nullptr,
                                 &t->pairs, &t->stats);
          t->buffer_stats = view.buffer->stats();
        }
      } catch (const std::exception& e) {
        t->status = Status::IoError(std::string("engine task threw: ") +
                                    e.what());
      } catch (...) {
        t->status = Status::IoError("engine task threw a non-std exception");
      }
      t->end = Clock::now();
    });
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), pool_(options.num_threads) {}

Engine::~Engine() = default;

std::vector<EngineQueryResult> Engine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  std::vector<EngineQueryResult> results(queries.size());

  // ---- Plan: expand each query into one or more leaf-range tasks. -------
  // Batches typically repeat the same environment many times; compute each
  // distinct (env, order, seed) leaf order once so the serial planning
  // prefix stays O(distinct environments), not O(queries).
  struct LeafOrder {
    const RcjEnvironment* env;
    SearchOrder order;
    uint64_t seed;
    std::vector<uint64_t> leaves;
  };
  std::vector<LeafOrder> leaf_orders;

  std::vector<EngineTask> tasks;
  std::vector<std::vector<size_t>> tasks_of_query(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const EngineQuery& query = queries[qi];
    if (query.env == nullptr) {
      results[qi].status =
          Status::InvalidArgument("EngineQuery with null environment");
      continue;
    }

    std::vector<std::vector<uint64_t>> ranges;
    if (options_.intra_query_parallelism &&
        IsIndexed(query.options.algorithm) && pool_.num_threads() > 1) {
      // The depth-first (or seeded-shuffle) leaf order is computed once
      // here on the caller thread, then split into contiguous ranges, so
      // concatenating task outputs in range order equals the serial run.
      const std::vector<uint64_t>* leaves_ptr = nullptr;
      for (const LeafOrder& cached : leaf_orders) {
        if (cached.env == query.env && cached.order == query.options.order &&
            cached.seed == query.options.random_seed) {
          leaves_ptr = &cached.leaves;
          break;
        }
      }
      if (leaves_ptr == nullptr) {
        LeafOrder entry;
        entry.env = query.env;
        entry.order = query.options.order;
        entry.seed = query.options.random_seed;
        const Status status =
            LeafPagesInOrder(query.env->tq(), query.options.order,
                             query.options.random_seed, &entry.leaves);
        if (!status.ok()) {
          results[qi].status = status;
          continue;
        }
        leaf_orders.push_back(std::move(entry));
        leaves_ptr = &leaf_orders.back().leaves;
      }
      const std::vector<uint64_t>& leaves = *leaves_ptr;
      if (leaves.size() >= options_.min_leaves_to_split) {
        const size_t max_tasks = std::max<size_t>(
            1, pool_.num_threads() * options_.tasks_per_thread);
        const size_t num_ranges = std::min(max_tasks, leaves.size());
        ranges.resize(num_ranges);
        // Balanced contiguous split: range sizes differ by at most one.
        const size_t base = leaves.size() / num_ranges;
        const size_t extra = leaves.size() % num_ranges;
        size_t next = 0;
        for (size_t r = 0; r < num_ranges; ++r) {
          const size_t len = base + (r < extra ? 1 : 0);
          ranges[r].assign(leaves.begin() + next,
                           leaves.begin() + next + len);
          next += len;
        }
      }
    }

    if (ranges.empty()) {
      EngineTask task;
      task.query_index = qi;
      tasks_of_query[qi].push_back(tasks.size());
      tasks.push_back(std::move(task));
    } else {
      for (std::vector<uint64_t>& range : ranges) {
        EngineTask task;
        task.query_index = qi;
        task.use_subset = true;
        task.leaf_subset = std::move(range);
        tasks_of_query[qi].push_back(tasks.size());
        tasks.push_back(std::move(task));
      }
    }
  }

  // ---- Execute: one flat task list, so inter- and intra-query work
  // interleaves freely across the pool. Queued lambdas hold pointers into
  // `tasks` and `queries`, so if a Submit() allocation throws mid-loop we
  // must drain the already-queued work before unwinding destroys them.
  try {
    SubmitTasks(queries, options_, &pool_, &tasks);
  } catch (...) {
    pool_.WaitIdle();
    throw;
  }
  pool_.WaitIdle();

  // ---- Merge: concatenate leaf ranges in order; aggregate the private
  // pools' fault accounting; charge the paper's I/O cost model. -----------
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!results[qi].status.ok()) continue;  // planning already failed
    EngineQueryResult& result = results[qi];
    double busy_seconds = 0.0;
    for (const size_t ti : tasks_of_query[qi]) {
      const EngineTask& task = tasks[ti];
      if (!task.status.ok()) {
        result.status = task.status;
        break;
      }
      result.run.pairs.insert(result.run.pairs.end(), task.pairs.begin(),
                              task.pairs.end());
      result.run.stats.candidates += task.stats.candidates;
      result.run.stats.results += task.stats.results;
      result.run.stats.node_accesses += task.buffer_stats.logical_accesses;
      result.run.stats.page_faults += task.buffer_stats.page_faults;
      busy_seconds +=
          std::chrono::duration<double>(task.end - task.start).count();
    }
    if (!result.status.ok()) {
      result.run = RcjRunResult();
      continue;
    }
    IoCostModel model;
    model.ms_per_fault = queries[qi].options.io_ms_per_fault;
    BufferStats aggregated;
    aggregated.page_faults = result.run.stats.page_faults;
    aggregated.logical_accesses = result.run.stats.node_accesses;
    result.run.stats.io_seconds = model.SecondsFor(aggregated);
    // Summed execution time of the query's own tasks — comparable to the
    // serial runner's cpu_seconds and never inflated by other queries'
    // tasks interleaving on the pool. Batch latency is the caller's wall
    // clock around RunBatch.
    result.run.stats.cpu_seconds = busy_seconds;
  }
  return results;
}

Result<RcjRunResult> Engine::Run(const RcjEnvironment& env,
                                 const RcjRunOptions& options) {
  std::vector<EngineQuery> batch(1);
  batch[0].env = &env;
  batch[0].options = options;
  std::vector<EngineQueryResult> results = RunBatch(batch);
  if (!results[0].status.ok()) return results[0].status;
  return std::move(results[0].run);
}

}  // namespace rcj
