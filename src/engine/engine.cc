#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "core/rcj_inj.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/buffer_manager.h"
#include "storage/cost_model.h"

namespace rcj {
namespace {

using Clock = std::chrono::steady_clock;

/// Cached leaf orders the engine keeps across batches.
constexpr size_t kPlanCacheCap = 32;

size_t WorkerPoolPages(const RcjEnvironment& env,
                       const EngineOptions& options) {
  const auto scaled = static_cast<size_t>(
      options.worker_buffer_fraction *
      static_cast<double>(env.total_tree_pages()));
  return std::max(options.worker_min_buffer_pages, scaled);
}

/// Per-query streaming state, shared by the query's tasks. A split query's
/// serial leaf order is divided into `num_chunks` fixed contiguous chunks;
/// tasks claim chunks from the shared `next_chunk` cursor (work stealing),
/// buffer each chunk's pairs privately in `chunk_pairs`, then mark the
/// chunk complete via DeliverReadyRanges, which flushes `chunk_pairs`
/// entries to the delivery sink strictly in chunk order — so the sink
/// observes the exact serial pair stream, incrementally, as the frontier
/// of completed chunks advances.
struct QueryEmitState {
  std::mutex mu;
  /// Final delivery target: the caller's sink, or an engine-owned
  /// VectorSink into the result slot.
  PairSink* sink = nullptr;
  uint64_t limit = 0;      ///< 0 = unlimited (from QuerySpec::limit).
  uint64_t delivered = 0;  ///< pairs handed to `sink` so far.
  size_t next_range = 0;   ///< first chunk not yet flushed.
  enum : char { kPending = 0, kDone = 1, kFailed = 2 };
  std::vector<char> range_done;  ///< per-chunk completion state.
  /// True once nothing more may reach the sink: the limit was satisfied,
  /// the sink refused a pair, or an earlier chunk failed (a later chunk's
  /// output would no longer be a serial prefix).
  bool delivery_closed = false;
  /// First failure raised by the delivery sink itself (an Emit() that
  /// threw); settled into the query's result status at merge time.
  Status delivery_status;
  /// Set (once) when a task observed the query's deadline expired at a
  /// chunk boundary: the whole query resolves to this status at merge
  /// time, since a partial stream past a blown budget is not a result.
  Status abort_status;
  /// Relaxed cross-thread signal that remaining work is pointless: tasks
  /// stop claiming chunks and running traversals stop at their next
  /// emission.
  std::atomic<bool> cancelled{false};

  // ---- chunk scheduling (work stealing) ----
  /// The query's full T_Q leaf order (engine plan cache), or null when the
  /// query runs as one unsplit task (BRUTE, small tree, intra off).
  const std::vector<uint64_t>* leaves = nullptr;
  size_t chunk_size = 0;
  size_t num_chunks = 1;
  /// Shared claim cursor: fetch_add hands each task the next unclaimed
  /// chunk, so a task stuck in a dense (skewed) leaf region simply claims
  /// fewer chunks while idle workers steal the rest.
  std::atomic<size_t> next_chunk{0};
  /// Stable per-chunk buffers (sized up front, never resized) so a chunk
  /// finished out of order survives until the frontier reaches it.
  std::vector<std::vector<RcjPair>> chunk_pairs;
};

/// Task-local sink: buffers into the chunk's private vector and aborts the
/// traversal as soon as the query was cancelled (limit satisfied
/// elsewhere) or this chunk has buffered `limit` pairs itself. The
/// per-chunk cap is sound because delivery is cumulative in chunk order:
/// once a single chunk holds `limit` pairs, nothing past them can ever
/// reach the user's sink — so a limit-capped query stops early even when
/// it runs as one task (single worker, small tree, or BRUTE).
class TaskBufferSink final : public PairSink {
 public:
  TaskBufferSink(std::vector<RcjPair>* buffer,
                 const std::atomic<bool>* cancelled, uint64_t limit)
      : buffer_(buffer), cancelled_(cancelled), limit_(limit) {}

  bool Emit(const RcjPair& pair) override {
    if (cancelled_->load(std::memory_order_relaxed)) return false;
    buffer_->push_back(pair);
    return limit_ == 0 || buffer_->size() < limit_;
  }

 private:
  std::vector<RcjPair>* buffer_;
  const std::atomic<bool>* cancelled_;
  uint64_t limit_;
};

/// One schedulable unit: a claimant of its query's chunk cursor. A query
/// spawns min(max_tasks, num_chunks) of these; each loops, claiming and
/// executing chunks until the cursor (or a cancellation) runs dry.
struct EngineTask {
  size_t query_index = 0;
  QueryEmitState* emit = nullptr;

  Status status;
  JoinStats stats;  ///< candidate/result counts accumulated by ExecuteRcj.
  // Buffer accounting of this task's chunks (deltas of the worker pool's
  // counters, so a warm cached pool attributes only this query's work).
  uint64_t node_accesses = 0;
  uint64_t page_faults = 0;
  uint64_t cold_faults = 0;
  uint64_t warm_faults = 0;
  double io_wall_seconds = 0.0;
  Clock::time_point start;
  Clock::time_point end;
};

/// Announces a claimed chunk's leaf pages to the backing store before the
/// traversal reads them (EngineOptions::readahead_leaves). STR leaves are
/// nearly sequential on disk, so consecutive page numbers are coalesced
/// into single Prefetch ranges — one fadvise/madvise per run instead of
/// one per page.
void PrefetchChunkLeaves(const PageStore& store,
                         const std::vector<uint64_t>& leaves, size_t cap) {
  size_t issued = 0;
  size_t i = 0;
  while (i < leaves.size() && issued < cap) {
    uint64_t start = leaves[i];
    uint64_t count = 1;
    while (i + 1 < leaves.size() && issued + count < cap &&
           leaves[i + 1] == leaves[i] + 1) {
      ++count;
      ++i;
    }
    store.Prefetch(start, count);
    issued += count;
    ++i;
  }
}

/// Marks `range` complete and flushes every ready chunk at the frontier to
/// the delivery sink, in order. Called by the worker that finished the
/// chunk; the per-query mutex serializes delivery, so sinks see one thread
/// at a time. On reaching the limit (or a sink refusal / chunk failure),
/// closes delivery and raises the cancellation flag for the query's
/// remaining chunks.
void DeliverReadyRanges(QueryEmitState* st, size_t range, bool failed) {
  std::lock_guard<std::mutex> lock(st->mu);
  st->range_done[range] =
      failed ? QueryEmitState::kFailed : QueryEmitState::kDone;
  if (failed) {
    st->delivery_closed = true;
    st->cancelled.store(true, std::memory_order_relaxed);
  }
  while (st->next_range < st->range_done.size() &&
         st->range_done[st->next_range] != QueryEmitState::kPending) {
    const std::vector<RcjPair>* ready =
        st->range_done[st->next_range] == QueryEmitState::kDone
            ? &st->chunk_pairs[st->next_range]
            : nullptr;
    if (!st->delivery_closed && ready != nullptr) {
      // The sink is caller code (or a vector push_back that can hit
      // bad_alloc); a throw must not escape into the thread pool with the
      // frontier half-advanced — convert it to a per-query failure and
      // close delivery, keeping this function's state transitions atomic.
      try {
        for (const RcjPair& pair : *ready) {
          ++st->delivered;
          const bool more = st->sink->Emit(pair);
          const bool at_limit = st->limit != 0 && st->delivered >= st->limit;
          if (!more || at_limit) {
            st->delivery_closed = true;
            st->cancelled.store(true, std::memory_order_relaxed);
            break;
          }
        }
      } catch (const std::exception& e) {
        st->delivery_status =
            Status::IoError(std::string("result sink threw: ") + e.what());
        st->delivery_closed = true;
        st->cancelled.store(true, std::memory_order_relaxed);
      } catch (...) {
        st->delivery_status =
            Status::IoError("result sink threw a non-std exception");
        st->delivery_closed = true;
        st->cancelled.store(true, std::memory_order_relaxed);
      }
    }
    ++st->next_range;
  }
}

/// The task body: claim chunks from the query's cursor until it runs dry
/// (or the query is cancelled), executing each against this worker's
/// cached view — acquired lazily, so a task that never claims a chunk
/// touches no index at all. All failure paths (Status and exceptions)
/// collapse to a failed chunk, which closes delivery for the query without
/// poisoning batchmates.
void RunTaskChunks(const EngineQuery& query, const EngineOptions& options,
                   std::vector<std::unique_ptr<WorkerContext>>* contexts,
                   EngineTask* t) {
  QueryEmitState* emit = t->emit;
  WorkerView local_view;  // cache-off storage
  WorkerView* view = nullptr;
  BufferStats base;

  const auto ensure_view = [&]() -> Status {
    if (view != nullptr) return Status::OK();
    const RcjEnvironment& env = *query.spec.env;
    const size_t pool_pages = WorkerPoolPages(env, options);
    obs::TraceContext* trace = query.spec.trace;
    const obs::TraceClock::time_point open_start =
        trace != nullptr ? obs::TraceClock::now()
                         : obs::TraceClock::time_point();
    bool opened_fresh = true;  // the cache-off path always opens cold
    if (options.view_cache) {
      const size_t worker = ThreadPool::CurrentWorkerIndex();
      // Tasks only run on pool workers, so the index is always in range.
      Result<WorkerView*> acquired =
          (*contexts)[worker]->Acquire(env, pool_pages, &opened_fresh);
      if (!acquired.ok()) return acquired.status();
      view = acquired.value();
    } else {
      RINGJOIN_RETURN_IF_ERROR(
          OpenWorkerView(env, pool_pages, &local_view));
      view = &local_view;
    }
    if (trace != nullptr) {
      trace->Record(opened_fresh ? "view_open_cold" : "view_open_warm", 2,
                    open_start, obs::TraceClock::now());
    }
    // Snapshot the pool counters so this task charges exactly its own
    // chunks — excluding the header pins of a fresh open (like the old
    // post-open ResetStats) and every earlier query on a warm pool.
    base = view->buffer->stats();
    return Status::OK();
  };

  for (;;) {
    // An external cancel (service ticket, dropped network peer) joins the
    // internal one here, so even a query that never emits a pair stops at
    // the next chunk boundary.
    if (query.cancel != nullptr &&
        query.cancel->load(std::memory_order_relaxed)) {
      emit->cancelled.store(true, std::memory_order_relaxed);
    }
    // Leaf-chunk boundaries are the engine's deadline enforcement points:
    // a blown budget aborts the whole query (DeadlineExceeded at merge)
    // instead of letting it keep claiming chunks it can no longer use.
    if (query.spec.deadline_expired(Clock::now())) {
      std::lock_guard<std::mutex> lock(emit->mu);
      if (emit->abort_status.ok()) {
        emit->abort_status = Status::DeadlineExceeded(
            "query deadline expired at a leaf-chunk boundary");
      }
      emit->delivery_closed = true;
      emit->cancelled.store(true, std::memory_order_relaxed);
    }
    if (emit->cancelled.load(std::memory_order_relaxed)) break;
    const size_t chunk =
        emit->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= emit->num_chunks) break;

    // The join code reports errors via Status, but allocation can still
    // throw on oversized result sets; convert to a per-query failure so
    // one starved query never poisons its batchmates (engine.h contract).
    Status status;
    try {
      status = ensure_view();
      if (status.ok()) {
        std::vector<uint64_t> subset;
        const std::vector<uint64_t>* subset_ptr = nullptr;
        if (emit->leaves != nullptr) {
          const size_t begin = chunk * emit->chunk_size;
          const size_t end = std::min(begin + emit->chunk_size,
                                      emit->leaves->size());
          subset.assign(emit->leaves->begin() + begin,
                        emit->leaves->begin() + end);
          subset_ptr = &subset;
        }
        const RcjEnvironment& env = *query.spec.env;
        if (subset_ptr != nullptr && options.readahead_leaves > 0) {
          PrefetchChunkLeaves(*env.q_page_store(), subset,
                              options.readahead_leaves);
        }
        TaskBufferSink sink(&emit->chunk_pairs[chunk], &emit->cancelled,
                            query.spec.limit);
        // Exactly one fragment of the query appends the overlay's delta-Q
        // tail: the last leaf chunk of a split query, or the whole query
        // when it was never split. Chunks deliver in index order, so the
        // merged stream stays identical across thread counts.
        const bool delta_tail = emit->leaves == nullptr ||
                                chunk == emit->num_chunks - 1;
        obs::TraceContext* trace = query.spec.trace;
        const obs::TraceClock::time_point chunk_start =
            trace != nullptr ? obs::TraceClock::now()
                             : obs::TraceClock::time_point();
        status = ExecuteRcj(view->tq_ref(), view->tp_ref(), env.qset(),
                            env.pset(), env.self_join(), query.spec,
                            subset_ptr, delta_tail, &sink, &t->stats);
        if (trace != nullptr) {
          trace->Record("leaf_chunk", 2, chunk_start,
                        obs::TraceClock::now());
        }
      }
    } catch (const std::exception& e) {
      status =
          Status::IoError(std::string("engine task threw: ") + e.what());
    } catch (...) {
      status = Status::IoError("engine task threw a non-std exception");
    }
    const bool failed = !status.ok();
    if (failed) t->status = status;
    DeliverReadyRanges(emit, chunk, failed);
    if (failed) break;
  }

  if (view != nullptr) {
    const BufferStats now = view->buffer->stats();
    t->node_accesses = now.logical_accesses - base.logical_accesses;
    t->page_faults = now.page_faults - base.page_faults;
    t->cold_faults = now.cold_faults - base.cold_faults;
    t->warm_faults = t->page_faults - t->cold_faults;
    t->io_wall_seconds = now.io_wall_seconds - base.io_wall_seconds;
    if (query.spec.trace != nullptr && t->page_faults > 0) {
      // Device wait attributed to this task's chunks; count = faults. The
      // sum across tasks can exceed the exec span's wall time — overlapped
      // waits are the parallel speedup, not an accounting error.
      query.spec.trace->RecordSeconds("io_wall", 2, t->io_wall_seconds,
                                      t->page_faults);
    }
  }
}

void SubmitTasks(const std::vector<EngineQuery>& queries,
                 const EngineOptions& engine_options,
                 std::vector<std::unique_ptr<WorkerContext>>* contexts,
                 ThreadPool* pool, std::vector<EngineTask>* tasks) {
  for (EngineTask& task : *tasks) {
    const EngineQuery& query = queries[task.query_index];
    EngineTask* t = &task;
    pool->Submit([t, &query, &engine_options, contexts] {
      t->start = Clock::now();
      RunTaskChunks(query, engine_options, contexts, t);
      t->end = Clock::now();
    });
  }
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options), pool_(options.num_threads) {
  contexts_.reserve(pool_.num_threads());
  for (size_t i = 0; i < pool_.num_threads(); ++i) {
    contexts_.push_back(std::make_unique<WorkerContext>(
        options_.max_cached_envs_per_worker));
  }
}

Engine::~Engine() = default;

void Engine::InvalidateCachedViews(const RcjEnvironment* env) {
  for (const std::unique_ptr<WorkerContext>& context : contexts_) {
    context->Invalidate(env);
  }
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    if (env == nullptr || it->env == env) {
      it = plan_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

WorkerContextStats Engine::context_stats() const {
  WorkerContextStats total;
  for (const std::unique_ptr<WorkerContext>& context : contexts_) {
    const WorkerContextStats& stats = context->stats();
    total.opens += stats.opens;
    total.reuses += stats.reuses;
    total.evictions += stats.evictions;
    total.invalidations += stats.invalidations;
  }
  return total;
}

Status Engine::LeavesFor(const QuerySpec& spec, uint64_t batch_id,
                         const std::vector<uint64_t>** leaves) {
  for (auto it = plan_cache_.begin(); it != plan_cache_.end(); ++it) {
    if (it->env != spec.env || it->order != spec.order ||
        it->seed != spec.random_seed) {
      continue;
    }
    if (it->generation == spec.env->generation()) {
      it->last_used_batch = batch_id;
      plan_cache_.splice(plan_cache_.begin(), plan_cache_, it);
      *leaves = &plan_cache_.front().leaves;
      return Status::OK();
    }
    // Same key, older generation: the environment was rebuilt — the plan
    // can never be valid again.
    plan_cache_.erase(it);
    break;
  }

  PlanEntry entry;
  entry.env = spec.env;
  entry.generation = spec.env->generation();
  entry.order = spec.order;
  entry.seed = spec.random_seed;
  entry.last_used_batch = batch_id;
  RINGJOIN_RETURN_IF_ERROR(LeafPagesInOrder(
      spec.env->tq(), spec.order, spec.random_seed, &entry.leaves));
  plan_cache_.push_front(std::move(entry));

  // Evict past the cap, oldest first — but never an entry this batch
  // already handed out (tasks hold pointers into its leaves).
  auto it = plan_cache_.end();
  while (plan_cache_.size() > kPlanCacheCap && it != plan_cache_.begin()) {
    --it;
    if (it->last_used_batch != batch_id) it = plan_cache_.erase(it);
  }
  *leaves = &plan_cache_.front().leaves;
  return Status::OK();
}

std::vector<EngineQueryResult> Engine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  std::vector<EngineQueryResult> results(queries.size());
  const uint64_t batch_id = ++batch_counter_;

  // ---- Plan: expand each query into one or more claimant tasks over a
  // chunked leaf order. Leaf orders come from the engine's persistent plan
  // cache, so batches repeating the same environment skip the serial
  // planning traversal entirely. ---------------------------------------
  std::vector<EngineTask> tasks;
  std::vector<std::vector<size_t>> tasks_of_query(queries.size());
  // Per-query streaming state and engine-owned collection sinks. Both are
  // stable vectors of pointers referenced by queued lambdas, so they must
  // outlive pool_.WaitIdle() below.
  std::vector<std::unique_ptr<QueryEmitState>> emit_states(queries.size());
  std::vector<std::unique_ptr<VectorSink>> collect_sinks(queries.size());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const EngineQuery& query = queries[qi];
    const Status valid = query.spec.Validate();
    if (!valid.ok()) {
      results[qi].status = valid;
      continue;
    }

    // The depth-first (or seeded-shuffle) leaf order is resolved once on
    // the caller thread, then chunked, so flushing chunk outputs in order
    // equals the serial run.
    const std::vector<uint64_t>* leaves = nullptr;
    if (options_.intra_query_parallelism &&
        query.spec.algorithm != RcjAlgorithm::kBrute &&
        pool_.num_threads() > 1) {
      const Status status = LeavesFor(query.spec, batch_id, &leaves);
      if (!status.ok()) {
        results[qi].status = status;
        continue;
      }
      if (leaves->size() < options_.min_leaves_to_split) leaves = nullptr;
    }

    emit_states[qi] = std::make_unique<QueryEmitState>();
    QueryEmitState* emit = emit_states[qi].get();
    if (query.sink != nullptr) {
      emit->sink = query.sink;
    } else {
      collect_sinks[qi] =
          std::make_unique<VectorSink>(&results[qi].run.pairs);
      emit->sink = collect_sinks[qi].get();
    }
    emit->limit = query.spec.limit;

    size_t num_tasks = 1;
    if (leaves != nullptr) {
      const size_t max_tasks = std::max<size_t>(
          1, pool_.num_threads() * options_.tasks_per_thread);
      // Auto chunks are several times finer than the task count, so the
      // cursor can rebalance a dense region. An explicit chunk size is
      // clamped to the static-split granularity (ceil(leaves/max_tasks)):
      // an oversized request degenerates to exactly the static contiguous
      // split, never below it — a huge --steal-chunk must not silently
      // serialize the query onto one worker.
      const size_t static_chunk =
          (leaves->size() + max_tasks - 1) / max_tasks;
      size_t chunk = options_.steal_chunk_leaves;
      if (chunk == 0) {
        chunk = std::max<size_t>(1, leaves->size() / (max_tasks * 8));
      }
      chunk = std::min(std::max<size_t>(1, chunk), static_chunk);
      emit->leaves = leaves;
      emit->chunk_size = chunk;
      emit->num_chunks = (leaves->size() + chunk - 1) / chunk;
      num_tasks = std::min(max_tasks, emit->num_chunks);
    }
    emit->range_done.assign(emit->num_chunks, QueryEmitState::kPending);
    emit->chunk_pairs.resize(emit->num_chunks);

    for (size_t r = 0; r < num_tasks; ++r) {
      EngineTask task;
      task.query_index = qi;
      task.emit = emit;
      tasks_of_query[qi].push_back(tasks.size());
      tasks.push_back(std::move(task));
    }
  }

  // ---- Execute: one flat task list, so inter- and intra-query work
  // interleaves freely across the pool. Queued lambdas hold pointers into
  // `tasks` and `queries`, so if a Submit() allocation throws mid-loop we
  // must drain the already-queued work before unwinding destroys them.
  try {
    SubmitTasks(queries, options_, &contexts_, &pool_, &tasks);
  } catch (...) {
    pool_.WaitIdle();
    throw;
  }
  pool_.WaitIdle();

  // ---- Merge: delivery already happened in chunk order as tasks
  // completed; here we aggregate the worker pools' fault accounting,
  // charge the paper's I/O cost model, and settle per-query statuses. ----
  static obs::Counter* queries_total =
      obs::MetricsRegistry::Default().counter("rcj_engine_queries_total");
  static obs::Counter* batches_total =
      obs::MetricsRegistry::Default().counter("rcj_engine_batches_total");
  static obs::Histogram* exec_seconds =
      obs::MetricsRegistry::Default().histogram("rcj_engine_exec_seconds");
  batches_total->Add();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!results[qi].status.ok()) continue;  // planning already failed
    EngineQueryResult& result = results[qi];
    double busy_seconds = 0.0;
    Clock::time_point first_start = Clock::time_point::max();
    Clock::time_point last_end = Clock::time_point::min();
    for (const size_t ti : tasks_of_query[qi]) {
      first_start = std::min(first_start, tasks[ti].start);
      last_end = std::max(last_end, tasks[ti].end);
    }
    for (const size_t ti : tasks_of_query[qi]) {
      const EngineTask& task = tasks[ti];
      if (!task.status.ok()) {
        result.status = task.status;
        break;
      }
      result.run.stats.candidates += task.stats.candidates;
      result.run.stats.node_accesses += task.node_accesses;
      result.run.stats.page_faults += task.page_faults;
      result.run.stats.cold_faults += task.cold_faults;
      result.run.stats.warm_faults += task.warm_faults;
      // Summed across tasks: with several workers faulting concurrently
      // this can exceed the batch's wall clock — it is total device wait,
      // the overlap is the speedup.
      result.run.stats.io_wall_seconds += task.io_wall_seconds;
      busy_seconds +=
          std::chrono::duration<double>(task.end - task.start).count();
    }
    if (result.status.ok() && !emit_states[qi]->abort_status.ok()) {
      result.status = emit_states[qi]->abort_status;
    }
    if (result.status.ok() && !emit_states[qi]->delivery_status.ok()) {
      result.status = emit_states[qi]->delivery_status;
    }
    if (!result.status.ok()) {
      // The caller's sink may have received a serial prefix before the
      // failing chunk was reached; the status is the source of truth.
      result.run = RcjRunResult();
      continue;
    }
    // Results = pairs actually delivered to the sink (the in-order
    // stream), not the sum of chunk buffers — chunks past a satisfied
    // limit may have buffered pairs that were rightly dropped.
    result.run.stats.results = emit_states[qi]->delivered;
    IoCostModel model;
    model.ms_per_fault = queries[qi].spec.io_ms_per_fault;
    BufferStats aggregated;
    aggregated.page_faults = result.run.stats.page_faults;
    aggregated.logical_accesses = result.run.stats.node_accesses;
    result.run.stats.io_seconds = model.SecondsFor(aggregated);
    // Summed execution time of the query's own tasks — comparable to the
    // serial runner's cpu_seconds and never inflated by other queries'
    // tasks interleaving on the pool. Batch latency is the caller's wall
    // clock around RunBatch.
    result.run.stats.cpu_seconds = busy_seconds;
    queries_total->Add();
    if (last_end > first_start) {
      // The query's wall window across its tasks (first start to last
      // end): what a p50/p99 latency summary should see, not the summed
      // busy time.
      exec_seconds->Observe(
          std::chrono::duration<double>(last_end - first_start).count());
      if (queries[qi].spec.trace != nullptr) {
        queries[qi].spec.trace->Record("exec", 1, first_start, last_end);
      }
    }
  }
  return results;
}

Result<RcjRunResult> Engine::Run(const QuerySpec& spec) {
  std::vector<EngineQuery> batch(1);
  batch[0].spec = spec;
  std::vector<EngineQueryResult> results = RunBatch(batch);
  if (!results[0].status.ok()) return results[0].status;
  return std::move(results[0].run);
}

Status Engine::Run(const QuerySpec& spec, PairSink* sink, JoinStats* stats) {
  std::vector<EngineQuery> batch(1);
  batch[0].spec = spec;
  batch[0].sink = sink;
  std::vector<EngineQueryResult> results = RunBatch(batch);
  if (!results[0].status.ok()) return results[0].status;
  *stats = results[0].run.stats;
  return Status::OK();
}

}  // namespace rcj
