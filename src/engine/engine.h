// rcj::Engine — a thread-pool-backed execution layer for batches of
// ring-constrained joins.
//
// The paper's runner executes one algorithm at a time against a cold
// buffer; a middleman-location service instead faces many concurrent
// queries (mixed algorithms, search orders, and pointset pairs) over a
// small set of long-lived indexes. The engine separates those concerns:
// environments are built once (RcjEnvironment::Build — trees, page stores,
// headers persisted), after which the engine executes whole batches
// concurrently over the shared immutable indexes.
//
// Two levels of parallelism compose inside one flat task list:
//   * inter-query: every query of a batch becomes at least one task;
//   * intra-query: an indexed join (INJ/BIJ/OBJ) is split into contiguous
//     ranges of T_Q's depth-first leaf order — the unit the paper's
//     algorithms already process independently — and each range becomes its
//     own task.
//
// Results stream: each query carries an optional PairSink, and pairs are
// delivered to it in the exact serial order as leaf-range tasks complete —
// a range's output is flushed the moment every earlier range has been
// flushed, so the head of the stream is available long before the join
// finishes. A QuerySpec::limit (or a sink returning false) stops delivery
// after the serial prefix and cancels the query's remaining tasks, which
// is how a caller gets top-k middleman pairs without paying for the full
// join.
//
// Workers execute through persistent execution contexts (worker_context.h):
// each worker thread owns a long-lived cache of (environment -> view)
// entries — private read-only R-tree views over the environment's page
// stores, faulting through a private LRU pool that stays WARM across
// tasks, batches, and service dispatch rounds. Repeat queries against the
// same environment skip view construction and serve the root path from the
// warm pool; JoinStats splits page_faults into cold_faults (first touches)
// and warm_faults (capacity re-faults) so the effect is observable per
// query. Entries are keyed by environment generation, so a rebuilt or
// destroyed environment can never satisfy a stale entry; the owning layers
// call InvalidateCachedViews() before tearing an environment down.
// EngineOptions::view_cache = false restores the original open-per-task
// model (every fault cold, minimal resident memory).
//
// Intra-query scheduling is adaptive: a split query's serial leaf order is
// divided into fine-grained chunks claimed from a shared atomic cursor, so
// a worker that drew a dense (skewed) leaf region simply claims fewer
// chunks while idle workers steal the rest — no static range assignment,
// and delivery still flushes strictly in chunk order, preserving the exact
// serial pair stream.
#ifndef RINGJOIN_ENGINE_ENGINE_H_
#define RINGJOIN_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/runner.h"
#include "engine/thread_pool.h"
#include "engine/worker_context.h"

namespace rcj {

/// Engine-wide knobs, fixed at construction.
struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Split single indexed queries across workers (intra-query parallelism).
  bool intra_query_parallelism = true;
  /// Target number of leaf-range tasks per worker thread when splitting one
  /// query; >1 lets the pool rebalance skewed ranges.
  size_t tasks_per_thread = 2;
  /// Queries whose T_Q has fewer leaves than this run as one task — the
  /// per-worker view/buffer setup would outweigh the traversal.
  size_t min_leaves_to_split = 8;
  /// Sizing of each worker's private buffer pool, mirroring the serial
  /// runner's buffer_fraction/min_buffer_pages pair.
  double worker_buffer_fraction = 0.01;
  size_t worker_min_buffer_pages = 32;
  /// Keep each worker's R-tree views and warm buffer pool alive across
  /// tasks and batches (the persistent worker-view cache). Off restores
  /// the original open-per-task model: fresh views and an all-cold pool
  /// for every task — the benchmark baseline and the memory floor.
  bool view_cache = true;
  /// Leaves claimed per scheduling step when one query is split across
  /// workers. Tasks pull chunks of this size from a shared cursor (work
  /// stealing), so skewed leaf regions no longer pin their whole static
  /// range to one worker. 0 = auto: leaves / (max_tasks * 8), at least 1.
  /// Explicit values are clamped to ceil(leaves / max_tasks), so an
  /// oversized chunk degenerates to exactly the static contiguous split —
  /// never to fewer tasks than that.
  size_t steal_chunk_leaves = 0;
  /// Environments one worker keeps warm at once; least recently used
  /// entries beyond the cap are dropped (views + buffer pool freed).
  size_t max_cached_envs_per_worker = 4;
  /// Leaf-order readahead: when a task claims a chunk of its query's T_Q
  /// leaf order, up to this many of the chunk's leaf pages are announced
  /// to the backing store (PageStore::Prefetch — posix_fadvise/madvise
  /// WILLNEED on the file backends, a no-op in memory) before the
  /// traversal reads them one by one. The leaf order is computed up front,
  /// so this is a perfect prefetch oracle: the kernel can stream the pages
  /// in while the worker is still verifying circles. 0 disables.
  size_t readahead_leaves = 256;
};

/// One query of a batch: the validated spec plus an optional streaming
/// target. When `sink` is set, pairs are delivered to it in serial order as
/// leaf-range tasks complete (and EngineQueryResult::run.pairs stays
/// empty); when null, pairs are collected into the result. The spec's
/// environment must outlive the batch and is treated as strictly read-only
/// (its shared buffer is never touched by the engine's workers). A shared
/// sink is driven by one thread at a time per query, but different queries
/// may flush concurrently — point each query at its own sink unless the
/// sink is thread-safe.
struct EngineQuery {
  QuerySpec spec;
  PairSink* sink = nullptr;
  /// Optional external cancellation flag (a service ticket's, a session's).
  /// Once true, the query winds down like a satisfied limit: leaf-range
  /// tasks not yet started are skipped and delivery closes. Granularity is
  /// the leaf-range task — a task already inside its traversal finishes
  /// that range (per-pair abort still happens through the sink contract).
  /// Must outlive the batch; null means not externally cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

/// Outcome of one batch entry, in input order. `run` is meaningful only
/// when `status.ok()`; for limit-capped queries its stats cover the work
/// actually performed before cancellation.
struct EngineQueryResult {
  Status status;
  RcjRunResult run;
};

/// A reusable batched executor. Construct once (threads spin up
/// immediately), then feed it any number of batches. One batch call at a
/// time: RunBatch is not reentrant — external callers serialize, which is
/// the natural shape for a service dispatch loop (rcj::Service owns
/// exactly that loop).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(Engine);

  size_t num_threads() const { return pool_.num_threads(); }
  const EngineOptions& options() const { return options_; }

  /// Executes every query of the batch concurrently; results are returned
  /// in input order. Per-query failures are reported in the corresponding
  /// slot — one bad query never poisons its batchmates.
  std::vector<EngineQueryResult> RunBatch(
      const std::vector<EngineQuery>& queries);

  /// Single-query conveniences: a one-element batch, so an indexed join
  /// still fans out across all workers when intra-query parallelism is on.
  Result<RcjRunResult> Run(const QuerySpec& spec);
  Status Run(const QuerySpec& spec, PairSink* sink, JoinStats* stats);

  /// Drops every cached worker view and cached leaf-order plan matching
  /// `env` (all of them when null). Call before destroying or rebuilding
  /// an environment the engine has executed against, so no worker holds
  /// views over freed page stores. Must not overlap a RunBatch call — the
  /// same external serialization the batch API already requires (rcj::
  /// Service runs it from its dispatcher, or after the dispatcher joined).
  void InvalidateCachedViews(const RcjEnvironment* env = nullptr);

  /// Aggregated view-cache counters across all workers (opens, reuses,
  /// evictions, invalidations). Same serialization rule as RunBatch.
  WorkerContextStats context_stats() const;

 private:
  /// Cached T_Q leaf orders keyed by (env, generation, order, seed):
  /// repeated batches over long-lived environments skip the serial
  /// planning traversal entirely. LRU-capped; entries referenced by the
  /// current batch are never evicted (tasks hold pointers into them).
  struct PlanEntry {
    const RcjEnvironment* env = nullptr;
    uint64_t generation = 0;
    SearchOrder order = SearchOrder::kDepthFirst;
    uint64_t seed = 0;
    uint64_t last_used_batch = 0;
    std::vector<uint64_t> leaves;
  };

  Status LeavesFor(const QuerySpec& spec, uint64_t batch_id,
                   const std::vector<uint64_t>** leaves);

  EngineOptions options_;
  /// Declared before pool_ so workers are joined (pool_ destroyed) before
  /// their contexts go away.
  std::vector<std::unique_ptr<WorkerContext>> contexts_;
  ThreadPool pool_;
  std::list<PlanEntry> plan_cache_;  // front = most recently used
  uint64_t batch_counter_ = 0;
};

}  // namespace rcj

#endif  // RINGJOIN_ENGINE_ENGINE_H_
