// A fixed-size worker pool with a single FIFO task queue — the execution
// substrate of the batched RCJ engine. Deliberately minimal: tasks are
// type-erased thunks, there is no work stealing, and the only
// synchronization primitives are one mutex and two condition variables, so
// the scheduling behavior stays easy to reason about under profiling.
#ifndef RINGJOIN_ENGINE_THREAD_POOL_H_
#define RINGJOIN_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace rcj {

/// Fixed-size thread pool. Submit() enqueues a task; WaitIdle() blocks the
/// caller until every submitted task has finished. Tasks must not Submit()
/// recursively and then block on WaitIdle() from inside the pool — the
/// engine schedules flat task lists only, so this never arises.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1; 0 is promoted to
  /// std::thread::hardware_concurrency()).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

  /// Index of the calling thread within its owning pool ([0, num_threads)),
  /// or kNotAWorker when the caller is not a pool worker. Each worker
  /// thread belongs to exactly one pool for its whole lifetime, so the
  /// index is a stable per-pool identity — the engine uses it to give every
  /// worker a private long-lived execution context without any locking.
  static size_t CurrentWorkerIndex();
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t active_tasks_ = 0;
  bool shutting_down_ = false;
};

}  // namespace rcj

#endif  // RINGJOIN_ENGINE_THREAD_POOL_H_
