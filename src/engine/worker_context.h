// Persistent per-worker execution contexts for the batched RCJ engine.
//
// The engine's original model opened fresh R-tree views (and a fresh LRU
// buffer pool) for every leaf-range task and threw them away afterwards: a
// service answering millions of queries over a handful of long-lived
// environments paid view construction plus the full cold root-path fault
// sequence on every task. A WorkerContext is the fix: each engine worker
// thread owns one for its whole lifetime, holding a small LRU cache of
// (environment -> view) entries whose buffer pools stay warm across tasks,
// batches, and service dispatch rounds. Repeat queries against the same
// environment hit the cached view, so the root path (and whatever else
// survived in the pool) is served from memory — the difference is reported
// per query as JoinStats::cold_faults vs warm_faults.
//
// Safety against environment churn: entries are keyed by the environment's
// pointer AND its process-unique generation (RcjEnvironment::generation()).
// An environment destroyed and rebuilt at the same address gets a new
// generation, so a stale entry can never satisfy a lookup — it is evicted
// and reopened. Entries for environments that simply vanished are dropped
// by the LRU cap or by an explicit Invalidate() from the owning layer
// (Engine::InvalidateCachedViews, Service::InvalidateEnvironment,
// ShardRouter::ReleaseEnvironment). Dropping an entry after its
// environment died is safe: cached pages are private copies and read-only
// views never dirty a page, so teardown touches no backing store.
//
// Thread safety: none. A WorkerContext belongs to exactly one worker
// thread; the engine indexes contexts by ThreadPool::CurrentWorkerIndex()
// and only ever touches a context from its owner (or from the engine's
// caller thread while no batch is in flight, which is when invalidation
// hooks run).
#ifndef RINGJOIN_ENGINE_WORKER_CONTEXT_H_
#define RINGJOIN_ENGINE_WORKER_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>

#include "common/macros.h"
#include "common/status.h"
#include "core/runner.h"
#include "rtree/rtree.h"
#include "storage/buffer_manager.h"

namespace rcj {

/// One cached window onto an environment's indexes: private read-only
/// RTree views faulting through a private LRU pool that stays warm for the
/// entry's lifetime.
struct WorkerView {
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<RTree> tq;
  std::unique_ptr<RTree> tp;  // null for self-joins (aliases tq)

  const RTree& tq_ref() const { return *tq; }
  const RTree& tp_ref() const { return tp != nullptr ? *tp : *tq; }
};

/// Opens a one-shot view over `env` with a fresh pool of `pool_pages` —
/// the engine's cache-off path. The cached path is WorkerContext::Acquire.
Status OpenWorkerView(const RcjEnvironment& env, size_t pool_pages,
                      WorkerView* view);

/// Aggregate counters of one context, for benches and observability.
struct WorkerContextStats {
  uint64_t opens = 0;        ///< views constructed (cache misses).
  uint64_t reuses = 0;       ///< lookups served by a warm entry.
  uint64_t evictions = 0;    ///< entries dropped by the LRU cap.
  uint64_t invalidations = 0;  ///< entries dropped by generation/hooks.
};

/// A worker's long-lived (environment -> WorkerView) cache. Lookup is a
/// short list scan (the cap is small); hit moves the entry to the front.
class WorkerContext {
 public:
  /// `max_entries` bounds how many environments one worker keeps warm
  /// (LRU beyond that); at least 1.
  explicit WorkerContext(size_t max_entries);
  ~WorkerContext();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(WorkerContext);

  /// Returns a view over `env`, opening one (buffer pool sized
  /// `pool_pages`) on a miss or a generation mismatch and reusing the warm
  /// cached entry otherwise. `*opened_fresh` (when non-null) reports
  /// whether this call constructed the view — the caller's cold/warm
  /// attribution signal beyond the buffer's own history. The returned
  /// pointer stays valid until the next Acquire/Invalidate on this
  /// context.
  Result<WorkerView*> Acquire(const RcjEnvironment& env, size_t pool_pages,
                              bool* opened_fresh);

  /// Drops every entry matching `env` (all entries when null). The hook
  /// the owning layers run before an environment is destroyed or rebuilt.
  void Invalidate(const RcjEnvironment* env);

  const WorkerContextStats& stats() const { return stats_; }
  size_t cached_environments() const { return entries_.size(); }

 private:
  struct Entry {
    const RcjEnvironment* env = nullptr;
    uint64_t generation = 0;
    size_t pool_pages = 0;
    WorkerView view;
  };

  size_t max_entries_;
  std::list<Entry> entries_;  // front = most recently used
  WorkerContextStats stats_;
};

}  // namespace rcj

#endif  // RINGJOIN_ENGINE_WORKER_CONTEXT_H_
