#include "engine/thread_pool.h"

namespace rcj {
namespace {

thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;

}  // namespace

size_t ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  try {
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  } catch (...) {
    // Spawn failed partway (e.g. system thread limit): join what exists —
    // destroying a joinable std::thread would std::terminate the process.
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    work_available_.notify_all();
    for (std::thread& thread : threads_) {
      thread.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && active_tasks_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Woken for shutdown with nothing left to run.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    // The library is Status-based and tasks are expected not to throw, but
    // an escaped exception (e.g. bad_alloc) must not take down the whole
    // process via std::terminate — one task's death is not the pool's.
    try {
      task();
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace rcj
