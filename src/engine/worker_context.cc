#include "engine/worker_context.h"

#include <utility>

#include "obs/metrics.h"

namespace rcj {
namespace {

/// The registry mirrors of WorkerContextStats, shared by every context
/// (the per-context split stays available via Engine::context_stats()).
struct ViewCacheMetrics {
  obs::Counter* opens;
  obs::Counter* reuses;
  obs::Counter* evictions;
  obs::Counter* invalidations;

  static const ViewCacheMetrics& Get() {
    static const ViewCacheMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      ViewCacheMetrics m;
      m.opens = registry.counter("rcj_worker_view_opens_total");
      m.reuses = registry.counter("rcj_worker_view_reuses_total");
      m.evictions = registry.counter("rcj_worker_view_evictions_total");
      m.invalidations =
          registry.counter("rcj_worker_view_invalidations_total");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

Status OpenWorkerView(const RcjEnvironment& env, size_t pool_pages,
                      WorkerView* view) {
  view->buffer = std::make_unique<BufferManager>(pool_pages);

  Result<std::unique_ptr<RTree>> tq = RTree::Open(
      env.q_page_store(), view->buffer.get(), env.rtree_options());
  if (!tq.ok()) return tq.status();
  view->tq = std::move(tq).value();

  if (!env.self_join()) {
    Result<std::unique_ptr<RTree>> tp = RTree::Open(
        env.p_page_store(), view->buffer.get(), env.rtree_options());
    if (!tp.ok()) return tp.status();
    view->tp = std::move(tp).value();
  }
  return Status::OK();
}

WorkerContext::WorkerContext(size_t max_entries)
    : max_entries_(max_entries > 0 ? max_entries : 1) {}

WorkerContext::~WorkerContext() = default;

Result<WorkerView*> WorkerContext::Acquire(const RcjEnvironment& env,
                                           size_t pool_pages,
                                           bool* opened_fresh) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->env != &env) continue;
    if (it->generation == env.generation() &&
        it->pool_pages == pool_pages) {
      entries_.splice(entries_.begin(), entries_, it);
      ++stats_.reuses;
      ViewCacheMetrics::Get().reuses->Add();
      if (opened_fresh != nullptr) *opened_fresh = false;
      return &entries_.front().view;
    }
    // Same address, different generation (rebuilt environment) or a
    // changed pool sizing: the entry is stale, never usable.
    ++stats_.invalidations;
    ViewCacheMetrics::Get().invalidations->Add();
    entries_.erase(it);
    break;
  }

  while (entries_.size() >= max_entries_) {
    ++stats_.evictions;
    ViewCacheMetrics::Get().evictions->Add();
    entries_.pop_back();
  }

  Entry entry;
  entry.env = &env;
  entry.generation = env.generation();
  entry.pool_pages = pool_pages;
  RINGJOIN_RETURN_IF_ERROR(OpenWorkerView(env, pool_pages, &entry.view));
  entries_.push_front(std::move(entry));
  ++stats_.opens;
  ViewCacheMetrics::Get().opens->Add();
  if (opened_fresh != nullptr) *opened_fresh = true;
  return &entries_.front().view;
}

void WorkerContext::Invalidate(const RcjEnvironment* env) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (env == nullptr || it->env == env) {
      ++stats_.invalidations;
      ViewCacheMetrics::Get().invalidations->Add();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rcj
