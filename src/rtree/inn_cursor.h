// Incremental nearest-neighbor cursor (Hjaltason & Samet, TODS 1999) — the
// spatial ranking operator the paper builds its filter step on (Section
// 2.1): points are reported in ascending distance from the query point, and
// the consumer decides on-demand how far to go.
#ifndef RINGJOIN_RTREE_INN_CURSOR_H_
#define RINGJOIN_RTREE_INN_CURSOR_H_

#include <queue>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "rtree/rtree.h"

namespace rcj {

/// Streams the points of an RTree in ascending (squared) Euclidean distance
/// from a fixed query point. The heap holds copies of visited entries, so no
/// buffer pins are held between Next() calls.
class InnCursor {
 public:
  InnCursor(const RTree* tree, const Point& query);

  /// Advances to the next-nearest point. Returns false when the tree is
  /// exhausted or an I/O error occurred (check status()).
  bool Next(PointRecord* out, double* dist2_out = nullptr);

  /// OK unless an I/O error interrupted the scan.
  const Status& status() const { return status_; }

  const Point& query() const { return query_; }

 private:
  struct HeapItem {
    double key = 0.0;  // squared mindist from the query
    bool is_point = false;
    PointRecord rec;
    uint64_t child_page = 0;
  };
  struct HeapCompare {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.key > b.key;  // min-heap
    }
  };

  const RTree* tree_;
  Point query_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare> heap_;
  Status status_;
};

}  // namespace rcj

#endif  // RINGJOIN_RTREE_INN_CURSOR_H_
