#include "rtree/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <numeric>

namespace rcj {
namespace {

constexpr uint64_t kHeaderMagic = 0x524a525452454531ull;  // "RJRTREE1"

struct HeaderLayout {
  uint64_t magic;
  uint32_t page_size;
  uint32_t height;
  uint64_t root_page;
  uint64_t num_points;
};

}  // namespace

bool StrLessByX(const PointRecord& a, const PointRecord& b) {
  if (a.pt.x != b.pt.x) return a.pt.x < b.pt.x;
  if (a.pt.y != b.pt.y) return a.pt.y < b.pt.y;
  return a.id < b.id;
}
bool StrLessByY(const PointRecord& a, const PointRecord& b) {
  if (a.pt.y != b.pt.y) return a.pt.y < b.pt.y;
  if (a.pt.x != b.pt.x) return a.pt.x < b.pt.x;
  return a.id < b.id;
}

RTree::RTree(PageStore* store, BufferManager* buffer, RTreeOptions options)
    : store_(store),
      buffer_(buffer),
      store_id_(buffer->RegisterStore(store)),
      options_(options),
      leaf_capacity_(Node::LeafCapacity(store->page_size())),
      branch_capacity_(Node::BranchCapacity(store->page_size())) {}

Result<std::unique_ptr<RTree>> RTree::Create(PageStore* store,
                                             BufferManager* buffer,
                                             RTreeOptions options) {
  if (store->num_pages() != 0) {
    return Status::InvalidArgument(
        "RTree::Create requires an empty page store");
  }
  std::unique_ptr<RTree> tree(new RTree(store, buffer, options));
  // Reserve page 0 for the header.
  uint64_t header_page = 0;
  Result<PageHandle> page = buffer->NewPage(tree->store_id_, &header_page);
  if (!page.ok()) return page.status();
  if (header_page != 0) {
    return Status::Corruption("header page must be page 0");
  }
  tree->header_page_ = header_page;
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Open(PageStore* store,
                                           BufferManager* buffer,
                                           RTreeOptions options) {
  if (store->num_pages() == 0) {
    return Status::InvalidArgument("RTree::Open on an empty page store");
  }
  std::unique_ptr<RTree> tree(new RTree(store, buffer, options));
  Result<PageHandle> page = buffer->Pin(tree->store_id_, 0);
  if (!page.ok()) return page.status();
  HeaderLayout header;
  std::memcpy(&header, page.value().data(), sizeof(header));
  if (header.magic != kHeaderMagic) {
    return Status::Corruption("bad R-tree header magic");
  }
  if (header.page_size != store->page_size()) {
    return Status::InvalidArgument("page size mismatch on RTree::Open");
  }
  tree->height_ = header.height;
  tree->root_page_ = header.root_page;
  tree->num_points_ = header.num_points;
  return tree;
}

Status RTree::SaveHeader() {
  Result<PageHandle> page = buffer_->Pin(store_id_, header_page_);
  if (!page.ok()) return page.status();
  HeaderLayout header;
  header.magic = kHeaderMagic;
  header.page_size = store_->page_size();
  header.height = height_;
  header.root_page = root_page_;
  header.num_points = num_points_;
  std::memcpy(page.value().mutable_data(), &header, sizeof(header));
  page.value().Release();
  return buffer_->FlushAll();
}

Result<Node> RTree::ReadNode(uint64_t page_no) const {
  Result<PageHandle> page = buffer_->Pin(store_id_, page_no);
  if (!page.ok()) return page.status();
  Node node;
  RINGJOIN_RETURN_IF_ERROR(
      Node::Deserialize(page.value().data(), store_->page_size(), &node));
  return node;
}

Status RTree::WriteNode(uint64_t page_no, const Node& node) {
  Result<PageHandle> page = buffer_->Pin(store_id_, page_no);
  if (!page.ok()) return page.status();
  node.SerializeTo(page.value().mutable_data(), store_->page_size());
  return Status::OK();
}

Result<uint64_t> RTree::AllocateNode(const Node& node) {
  uint64_t page_no = 0;
  Result<PageHandle> page = buffer_->NewPage(store_id_, &page_no);
  if (!page.ok()) return page.status();
  node.SerializeTo(page.value().mutable_data(), store_->page_size());
  return page_no;
}

uint32_t RTree::MinFill(const Node& node) const {
  const uint32_t capacity = NodeCapacity(node);
  const auto m = static_cast<uint32_t>(options_.min_fill_fraction *
                                       static_cast<double>(capacity));
  return std::max<uint32_t>(1, m);
}

// ---- Insertion ----------------------------------------------------------

Status RTree::Insert(const PointRecord& rec) {
  reinsert_done_.assign(height_ == 0 ? 1 : height_, false);
  PendingEntry entry;
  entry.mbr = Rect::FromPoint(rec.pt);
  entry.target_level = 0;
  entry.is_point = true;
  entry.leaf.rec = rec;
  RINGJOIN_RETURN_IF_ERROR(InsertEntry(entry));
  ++num_points_;
  return Status::OK();
}

Status RTree::InsertEntry(const PendingEntry& entry) {
  if (height_ == 0) {
    assert(entry.is_point);
    Node root;
    root.level = 0;
    root.points.push_back(entry.leaf);
    Result<uint64_t> page = AllocateNode(root);
    if (!page.ok()) return page.status();
    root_page_ = page.value();
    height_ = 1;
    return Status::OK();
  }

  std::vector<PathStep> path;
  uint64_t cur_page = root_page_;
  uint32_t cur_level = height_ - 1;
  Result<Node> node = ReadNode(cur_page);
  if (!node.ok()) return node.status();
  while (cur_level > entry.target_level) {
    const size_t idx = ChooseSubtree(node.value(), entry.mbr);
    path.push_back(PathStep{cur_page, std::move(node.value()), idx});
    cur_page = path.back().node.children[idx].child;
    node = ReadNode(cur_page);
    if (!node.ok()) return node.status();
    --cur_level;
  }

  Node target = std::move(node.value());
  if (target.is_leaf()) {
    target.points.push_back(entry.leaf);
  } else {
    target.children.push_back(entry.branch);
  }

  if (target.size() <= NodeCapacity(target)) {
    RINGJOIN_RETURN_IF_ERROR(WriteNode(cur_page, target));
    return PropagateMbrUp(&path, target.ComputeMbr());
  }
  return HandleOverflow(cur_page, std::move(target), &path);
}

Status RTree::PropagateMbrUp(std::vector<PathStep>* path, Rect child_mbr) {
  for (auto it = path->rbegin(); it != path->rend(); ++it) {
    Rect& slot = it->node.children[it->child_idx].mbr;
    if (slot == child_mbr) return Status::OK();  // ancestors unchanged
    slot = child_mbr;
    RINGJOIN_RETURN_IF_ERROR(WriteNode(it->page_no, it->node));
    child_mbr = it->node.ComputeMbr();
  }
  return Status::OK();
}

Status RTree::HandleOverflow(uint64_t page_no, Node node,
                             std::vector<PathStep>* path) {
  const uint32_t level = node.level;
  const bool is_root = path->empty();
  if (options_.forced_reinsert && !is_root && level < reinsert_done_.size() &&
      !reinsert_done_[level]) {
    return ForcedReinsert(page_no, std::move(node), path);
  }
  return SplitAndPropagate(page_no, std::move(node), path);
}

Status RTree::ForcedReinsert(uint64_t page_no, Node node,
                             std::vector<PathStep>* path) {
  reinsert_done_[node.level] = true;

  const Point center = node.ComputeMbr().Center();
  const size_t total = node.size();
  size_t p = static_cast<size_t>(options_.reinsert_fraction *
                                 static_cast<double>(total));
  p = std::clamp<size_t>(p, 1, total - 1);

  // Order entries by distance of their MBR center from the node center,
  // farthest first; the first p are removed and reinserted closest-first
  // (the R* paper's "close reinsert" policy).
  std::vector<size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  auto entry_center = [&](size_t i) {
    return node.is_leaf() ? node.points[i].rec.pt
                          : node.children[i].mbr.Center();
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return Dist2(entry_center(a), center) > Dist2(entry_center(b), center);
  });

  std::vector<PendingEntry> removed;
  removed.reserve(p);
  std::vector<bool> is_removed(total, false);
  for (size_t i = 0; i < p; ++i) {
    const size_t idx = order[i];
    is_removed[idx] = true;
    PendingEntry entry;
    entry.target_level = node.level;
    if (node.is_leaf()) {
      entry.is_point = true;
      entry.leaf = node.points[idx];
      entry.mbr = entry.leaf.Mbr();
    } else {
      entry.is_point = false;
      entry.branch = node.children[idx];
      entry.mbr = entry.branch.mbr;
    }
    removed.push_back(std::move(entry));
  }

  if (node.is_leaf()) {
    std::vector<LeafEntry> kept;
    kept.reserve(total - p);
    for (size_t i = 0; i < total; ++i) {
      if (!is_removed[i]) kept.push_back(node.points[i]);
    }
    node.points = std::move(kept);
  } else {
    std::vector<BranchEntry> kept;
    kept.reserve(total - p);
    for (size_t i = 0; i < total; ++i) {
      if (!is_removed[i]) kept.push_back(node.children[i]);
    }
    node.children = std::move(kept);
  }

  RINGJOIN_RETURN_IF_ERROR(WriteNode(page_no, node));
  RINGJOIN_RETURN_IF_ERROR(PropagateMbrUp(path, node.ComputeMbr()));

  // Reinsert closest-first (reverse of farthest-first order).
  for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
    RINGJOIN_RETURN_IF_ERROR(InsertEntry(*it));
  }
  return Status::OK();
}

Status RTree::SplitAndPropagate(uint64_t page_no, Node node,
                                std::vector<PathStep>* path) {
  Node sibling;
  SplitNode(&node, &sibling);
  RINGJOIN_RETURN_IF_ERROR(WriteNode(page_no, node));
  Result<uint64_t> new_page = AllocateNode(sibling);
  if (!new_page.ok()) return new_page.status();

  const Rect mbr1 = node.ComputeMbr();
  const Rect mbr2 = sibling.ComputeMbr();

  if (path->empty()) {
    // Root split: grow the tree by one level.
    Node new_root;
    new_root.level = node.level + 1;
    new_root.children.push_back(BranchEntry{mbr1, page_no});
    new_root.children.push_back(BranchEntry{mbr2, new_page.value()});
    Result<uint64_t> root = AllocateNode(new_root);
    if (!root.ok()) return root.status();
    root_page_ = root.value();
    ++height_;
    // The fresh level never reinserts within this insertion round.
    reinsert_done_.resize(height_, true);
    return Status::OK();
  }

  PathStep parent = std::move(path->back());
  path->pop_back();
  parent.node.children[parent.child_idx].mbr = mbr1;
  parent.node.children.push_back(BranchEntry{mbr2, new_page.value()});
  if (parent.node.size() <= branch_capacity_) {
    RINGJOIN_RETURN_IF_ERROR(WriteNode(parent.page_no, parent.node));
    return PropagateMbrUp(path, parent.node.ComputeMbr());
  }
  return HandleOverflow(parent.page_no, std::move(parent.node), path);
}

size_t RTree::ChooseSubtree(const Node& node, const Rect& mbr) const {
  assert(!node.is_leaf());
  const std::vector<BranchEntry>& entries = node.children;
  size_t best = 0;

  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement (R* heuristic),
    // breaking ties by area enlargement, then by area.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      const Rect grown = Union(entries[i].mbr, mbr);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < entries.size(); ++j) {
        if (j == i) continue;
        overlap_delta += grown.OverlapArea(entries[j].mbr) -
                         entries[i].mbr.OverlapArea(entries[j].mbr);
      }
      const double enlarge = grown.Area() - entries[i].mbr.Area();
      const double area = entries[i].mbr.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best = i;
        best_overlap = overlap_delta;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    return best;
  }

  // Higher levels: minimize area enlargement, ties by area.
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    const double enlarge = Enlargement(entries[i].mbr, mbr);
    const double area = entries[i].mbr.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = i;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  return best;
}

void RTree::SplitNode(Node* node, Node* sibling) const {
  sibling->level = node->level;
  sibling->points.clear();
  sibling->children.clear();

  const size_t total = node->size();
  const uint32_t capacity = NodeCapacity(*node);
  size_t m = std::max<uint32_t>(1, static_cast<uint32_t>(
                                       options_.min_fill_fraction *
                                       static_cast<double>(capacity)));
  m = std::min(m, total / 2);
  m = std::max<size_t>(m, 1);

  auto mbr_of = [&](size_t i) {
    return node->is_leaf() ? node->points[i].Mbr() : node->children[i].mbr;
  };

  // R* split, step 1: choose the split axis by minimum total margin over all
  // candidate distributions (both sort orders, all legal split positions).
  // Step 2: on the winning axis choose the distribution with minimum overlap
  // between the two groups, ties broken by total area.
  std::vector<size_t> best_order;
  size_t best_split = 0;
  double best_axis_margin = std::numeric_limits<double>::infinity();
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int best_axis = -1;

  for (int axis = 0; axis < 2; ++axis) {
    double axis_margin = 0.0;
    // Candidate distributions for this axis, to re-rank if the axis wins.
    struct Candidate {
      std::vector<size_t> order;
      size_t split;
      double overlap;
      double area;
    };
    std::vector<Candidate> candidates;

    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<size_t> order(total);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Rect ra = mbr_of(a);
        const Rect rb = mbr_of(b);
        const double ka = axis == 0 ? (by_upper ? ra.hi.x : ra.lo.x)
                                    : (by_upper ? ra.hi.y : ra.lo.y);
        const double kb = axis == 0 ? (by_upper ? rb.hi.x : rb.lo.x)
                                    : (by_upper ? rb.hi.y : rb.lo.y);
        if (ka != kb) return ka < kb;
        return a < b;
      });

      // Prefix/suffix MBRs make each distribution O(1).
      std::vector<Rect> prefix(total), suffix(total);
      Rect acc = Rect::Empty();
      for (size_t i = 0; i < total; ++i) {
        acc.ExpandRect(mbr_of(order[i]));
        prefix[i] = acc;
      }
      acc = Rect::Empty();
      for (size_t i = total; i-- > 0;) {
        acc.ExpandRect(mbr_of(order[i]));
        suffix[i] = acc;
      }

      for (size_t k = m; k + m <= total; ++k) {
        const Rect& g1 = prefix[k - 1];
        const Rect& g2 = suffix[k];
        axis_margin += g1.Margin() + g2.Margin();
        candidates.push_back(Candidate{order, k, g1.OverlapArea(g2),
                                       g1.Area() + g2.Area()});
      }
    }

    if (axis_margin < best_axis_margin) {
      best_axis_margin = axis_margin;
      best_axis = axis;
      best_overlap = std::numeric_limits<double>::infinity();
      best_area = std::numeric_limits<double>::infinity();
      for (Candidate& c : candidates) {
        if (c.overlap < best_overlap ||
            (c.overlap == best_overlap && c.area < best_area)) {
          best_overlap = c.overlap;
          best_area = c.area;
          best_order = std::move(c.order);
          best_split = c.split;
        }
      }
    }
  }
  assert(best_axis >= 0);
  (void)best_axis;

  // Apply the chosen distribution: first `best_split` stay, rest move.
  if (node->is_leaf()) {
    std::vector<LeafEntry> keep, move;
    keep.reserve(best_split);
    move.reserve(total - best_split);
    for (size_t i = 0; i < total; ++i) {
      (i < best_split ? keep : move).push_back(node->points[best_order[i]]);
    }
    node->points = std::move(keep);
    sibling->points = std::move(move);
  } else {
    std::vector<BranchEntry> keep, move;
    keep.reserve(best_split);
    move.reserve(total - best_split);
    for (size_t i = 0; i < total; ++i) {
      (i < best_split ? keep : move).push_back(node->children[best_order[i]]);
    }
    node->children = std::move(keep);
    sibling->children = std::move(move);
  }
}

// ---- Deletion ------------------------------------------------------------

Status RTree::FindLeafRec(uint64_t page_no, const PointRecord& rec,
                          std::vector<PathStep>* path, uint64_t* leaf_page,
                          Node* leaf, bool* found) const {
  Result<Node> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf()) {
    for (const LeafEntry& e : node.value().points) {
      if (e.rec.id == rec.id && e.rec.pt == rec.pt) {
        *leaf_page = page_no;
        *leaf = std::move(node.value());
        *found = true;
        return Status::OK();
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < node.value().children.size(); ++i) {
    const BranchEntry& e = node.value().children[i];
    if (!e.mbr.Contains(rec.pt)) continue;
    path->push_back(PathStep{page_no, node.value(), i});
    RINGJOIN_RETURN_IF_ERROR(
        FindLeafRec(e.child, rec, path, leaf_page, leaf, found));
    if (*found) return Status::OK();
    path->pop_back();
  }
  return Status::OK();
}

Status RTree::CollectSubtreePoints(uint64_t page_no,
                                   std::vector<LeafEntry>* out) const {
  Result<Node> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf()) {
    out->insert(out->end(), node.value().points.begin(),
                node.value().points.end());
    return Status::OK();
  }
  for (const BranchEntry& e : node.value().children) {
    RINGJOIN_RETURN_IF_ERROR(CollectSubtreePoints(e.child, out));
  }
  return Status::OK();
}

Status RTree::Delete(const PointRecord& rec, bool* found) {
  *found = false;
  if (height_ == 0) return Status::OK();

  std::vector<PathStep> path;
  uint64_t leaf_page = 0;
  Node leaf;
  RINGJOIN_RETURN_IF_ERROR(
      FindLeafRec(root_page_, rec, &path, &leaf_page, &leaf, found));
  if (!*found) return Status::OK();

  // Remove the entry from the leaf.
  for (size_t i = 0; i < leaf.points.size(); ++i) {
    if (leaf.points[i].rec.id == rec.id && leaf.points[i].rec.pt == rec.pt) {
      leaf.points.erase(leaf.points.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  --num_points_;

  // Condense bottom-up: underflowed non-root nodes are dissolved — their
  // surviving points are collected for reinsertion and their parent slot
  // removed; healthy nodes just tighten their ancestors' MBRs.
  std::vector<LeafEntry> orphans;
  Node current = std::move(leaf);
  uint64_t current_page = leaf_page;
  while (!path.empty()) {
    PathStep parent = std::move(path.back());
    path.pop_back();
    const bool underflow = current.size() < MinFill(current);
    if (underflow) {
      if (current.is_leaf()) {
        orphans.insert(orphans.end(), current.points.begin(),
                       current.points.end());
      } else {
        for (const BranchEntry& e : current.children) {
          RINGJOIN_RETURN_IF_ERROR(CollectSubtreePoints(e.child, &orphans));
        }
      }
      // The dissolved node's page becomes garbage (no free list; deletion
      // is off the join's hot path and page reuse is not worth the
      // complexity here).
      parent.node.children.erase(parent.node.children.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     parent.child_idx));
    } else {
      RINGJOIN_RETURN_IF_ERROR(WriteNode(current_page, current));
      parent.node.children[parent.child_idx].mbr = current.ComputeMbr();
    }
    current = std::move(parent.node);
    current_page = parent.page_no;
  }

  // `current` is now the root.
  RINGJOIN_RETURN_IF_ERROR(WriteNode(current_page, current));

  // Shrink degenerate root chains.
  while (height_ > 1) {
    Result<Node> root = ReadNode(root_page_);
    if (!root.ok()) return root.status();
    if (root.value().is_leaf() || root.value().children.size() != 1) break;
    root_page_ = root.value().children[0].child;
    --height_;
  }
  if (height_ == 1) {
    Result<Node> root = ReadNode(root_page_);
    if (!root.ok()) return root.status();
    if (root.value().is_leaf() && root.value().points.empty() &&
        num_points_ == orphans.size()) {
      height_ = 0;  // fully empty; orphans (if any) re-grow the tree below
    }
  }

  // Reinsert orphaned points.
  for (const LeafEntry& e : orphans) {
    reinsert_done_.assign(height_ == 0 ? 1 : height_, false);
    PendingEntry entry;
    entry.mbr = e.Mbr();
    entry.target_level = 0;
    entry.is_point = true;
    entry.leaf = e;
    RINGJOIN_RETURN_IF_ERROR(InsertEntry(entry));
  }
  return Status::OK();
}

// ---- Bulk loading --------------------------------------------------------

void RTree::BulkFills(uint32_t* leaf_fill, uint32_t* branch_fill) const {
  *leaf_fill = std::clamp<uint32_t>(
      static_cast<uint32_t>(options_.bulk_fill_fraction *
                            static_cast<double>(leaf_capacity_)),
      1, leaf_capacity_);
  *branch_fill = std::clamp<uint32_t>(
      static_cast<uint32_t>(options_.bulk_fill_fraction *
                            static_cast<double>(branch_capacity_)),
      2, branch_capacity_);
}

Status RTree::EmitBulkLeaf(const PointRecord* recs, size_t count,
                           std::vector<BranchEntry>* level_entries) {
  Node leaf;
  leaf.level = 0;
  leaf.points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    leaf.points.push_back(LeafEntry{recs[i]});
  }
  Result<uint64_t> page = AllocateNode(leaf);
  if (!page.ok()) return page.status();
  level_entries->push_back(BranchEntry{leaf.ComputeMbr(), page.value()});
  return Status::OK();
}

Status RTree::BulkLoadStr(std::vector<PointRecord> recs) {
  if (height_ != 0 || num_points_ != 0) {
    return Status::InvalidArgument("BulkLoadStr requires an empty tree");
  }
  if (recs.empty()) return Status::OK();

  uint32_t leaf_fill = 0, branch_fill = 0;
  BulkFills(&leaf_fill, &branch_fill);

  const size_t n = recs.size();
  num_points_ = n;

  // Tile the points: sort by x, cut into ~sqrt(#leaves) vertical slabs,
  // sort each slab by y, cut into leaf-sized runs.
  std::sort(recs.begin(), recs.end(), StrLessByX);
  const size_t num_leaves = (n + leaf_fill - 1) / leaf_fill;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t per_slab = (n + num_slabs - 1) / num_slabs;

  std::vector<BranchEntry> level_entries;
  for (size_t slab_begin = 0; slab_begin < n; slab_begin += per_slab) {
    const size_t slab_end = std::min(n, slab_begin + per_slab);
    std::sort(recs.begin() + static_cast<std::ptrdiff_t>(slab_begin),
              recs.begin() + static_cast<std::ptrdiff_t>(slab_end),
              StrLessByY);
    for (size_t begin = slab_begin; begin < slab_end; begin += leaf_fill) {
      const size_t end = std::min(slab_end, begin + leaf_fill);
      RINGJOIN_RETURN_IF_ERROR(
          EmitBulkLeaf(recs.data() + begin, end - begin, &level_entries));
    }
  }
  return PackBulkUpperLevels(std::move(level_entries), branch_fill);
}

Status RTree::PackBulkUpperLevels(std::vector<BranchEntry> level_entries,
                                  uint32_t branch_fill) {
  // Pack upper levels with the same tiling on entry-MBR centers.
  uint32_t level = 1;
  while (level_entries.size() > 1) {
    std::sort(level_entries.begin(), level_entries.end(),
              [](const BranchEntry& a, const BranchEntry& b) {
                const Point ca = a.mbr.Center();
                const Point cb = b.mbr.Center();
                if (ca.x != cb.x) return ca.x < cb.x;
                return ca.y < cb.y;
              });
    const size_t count = level_entries.size();
    const size_t nodes_needed = (count + branch_fill - 1) / branch_fill;
    const size_t slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(nodes_needed))));
    const size_t slab_size = (count + slabs - 1) / slabs;

    std::vector<BranchEntry> parents;
    for (size_t slab_begin = 0; slab_begin < count; slab_begin += slab_size) {
      const size_t slab_end = std::min(count, slab_begin + slab_size);
      std::sort(level_entries.begin() + static_cast<std::ptrdiff_t>(slab_begin),
                level_entries.begin() + static_cast<std::ptrdiff_t>(slab_end),
                [](const BranchEntry& a, const BranchEntry& b) {
                  const Point ca = a.mbr.Center();
                  const Point cb = b.mbr.Center();
                  if (ca.y != cb.y) return ca.y < cb.y;
                  return ca.x < cb.x;
                });
      for (size_t begin = slab_begin; begin < slab_end; begin += branch_fill) {
        const size_t end = std::min(slab_end, begin + branch_fill);
        Node branch;
        branch.level = level;
        branch.children.assign(
            level_entries.begin() + static_cast<std::ptrdiff_t>(begin),
            level_entries.begin() + static_cast<std::ptrdiff_t>(end));
        Result<uint64_t> page = AllocateNode(branch);
        if (!page.ok()) return page.status();
        parents.push_back(BranchEntry{branch.ComputeMbr(), page.value()});
      }
    }
    level_entries = std::move(parents);
    ++level;
  }

  root_page_ = level_entries.front().child;
  height_ = level;
  return Status::OK();
}

// ---- Queries -------------------------------------------------------------

Status RTree::RangeSearch(const Rect& box, std::vector<PointRecord>* out) const {
  if (height_ == 0) return Status::OK();
  return RangeSearchRec(root_page_, box, out);
}

Status RTree::RangeSearchRec(uint64_t page_no, const Rect& box,
                             std::vector<PointRecord>* out) const {
  Result<Node> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf()) {
    for (const LeafEntry& e : node.value().points) {
      if (box.Contains(e.rec.pt)) out->push_back(e.rec);
    }
    return Status::OK();
  }
  for (const BranchEntry& e : node.value().children) {
    if (box.Intersects(e.mbr)) {
      RINGJOIN_RETURN_IF_ERROR(RangeSearchRec(e.child, box, out));
    }
  }
  return Status::OK();
}

Status RTree::CircleRangeStrict(const Circle& circle,
                                std::vector<PointRecord>* out) const {
  if (height_ == 0) return Status::OK();
  return CircleRangeRec(root_page_, circle, out);
}

Status RTree::CircleRangeRec(uint64_t page_no, const Circle& circle,
                             std::vector<PointRecord>* out) const {
  Result<Node> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf()) {
    for (const LeafEntry& e : node.value().points) {
      if (circle.ContainsStrict(e.rec.pt)) out->push_back(e.rec);
    }
    return Status::OK();
  }
  for (const BranchEntry& e : node.value().children) {
    if (circle.IntersectsRect(e.mbr)) {
      RINGJOIN_RETURN_IF_ERROR(CircleRangeRec(e.child, circle, out));
    }
  }
  return Status::OK();
}

Status RTree::VisitLeavesDepthFirst(
    const std::function<bool(const Node&)>& callback) const {
  if (height_ == 0) return Status::OK();
  bool keep_going = true;
  return VisitLeavesRec(root_page_, callback, &keep_going);
}

Status RTree::VisitLeavesRec(uint64_t page_no,
                             const std::function<bool(const Node&)>& callback,
                             bool* keep_going) const {
  if (!*keep_going) return Status::OK();
  Result<Node> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf()) {
    *keep_going = callback(node.value());
    return Status::OK();
  }
  for (const BranchEntry& e : node.value().children) {
    RINGJOIN_RETURN_IF_ERROR(VisitLeavesRec(e.child, callback, keep_going));
    if (!*keep_going) break;
  }
  return Status::OK();
}

Status RTree::CollectLeafPages(std::vector<uint64_t>* out) const {
  if (height_ == 0) return Status::OK();
  // Depth-first collection without the callback interface: an explicit
  // stack of branch entries, children pushed in reverse to preserve order.
  std::vector<uint64_t> stack{root_page_};
  std::vector<uint32_t> levels{height_ - 1};
  while (!stack.empty()) {
    const uint64_t page = stack.back();
    const uint32_t level = levels.back();
    stack.pop_back();
    levels.pop_back();
    if (level == 0) {
      out->push_back(page);
      continue;
    }
    Result<Node> node = ReadNode(page);
    if (!node.ok()) return node.status();
    const std::vector<BranchEntry>& children = node.value().children;
    for (size_t i = children.size(); i-- > 0;) {
      stack.push_back(children[i].child);
      levels.push_back(level - 1);
    }
  }
  return Status::OK();
}

Result<Rect> RTree::Bounds() const {
  if (height_ == 0) return Rect::Empty();
  Result<Node> root = ReadNode(root_page_);
  if (!root.ok()) return root.status();
  return root.value().ComputeMbr();
}

// ---- Integrity -----------------------------------------------------------

Status RTree::CheckInvariants() const {
  if (height_ == 0) {
    if (num_points_ != 0) {
      return Status::Corruption("empty tree with nonzero point count");
    }
    return Status::OK();
  }
  Result<Node> root = ReadNode(root_page_);
  if (!root.ok()) return root.status();
  if (root.value().level != height_ - 1) {
    return Status::Corruption("root level does not match tree height");
  }
  uint64_t points = 0;
  RINGJOIN_RETURN_IF_ERROR(CheckInvariantsRec(
      root_page_, height_ - 1, root.value().ComputeMbr(), true, &points));
  if (points != num_points_) {
    return Status::Corruption("leaf point total does not match num_points");
  }
  return Status::OK();
}

Status RTree::CheckInvariantsRec(uint64_t page_no, uint32_t expected_level,
                                 const Rect& expected_mbr, bool is_root,
                                 uint64_t* point_count) const {
  Result<Node> node_result = ReadNode(page_no);
  if (!node_result.ok()) return node_result.status();
  const Node& node = node_result.value();
  if (node.level != expected_level) {
    return Status::Corruption("node level mismatch");
  }
  if (node.size() == 0 && !(is_root && height_ == 1)) {
    return Status::Corruption("empty non-root node");
  }
  if (node.size() > NodeCapacity(node)) {
    return Status::Corruption("node exceeds capacity");
  }
  if (!(node.ComputeMbr() == expected_mbr)) {
    return Status::Corruption("stored MBR does not equal exact child MBR");
  }
  if (node.is_leaf()) {
    *point_count += node.points.size();
    return Status::OK();
  }
  for (const BranchEntry& e : node.children) {
    RINGJOIN_RETURN_IF_ERROR(CheckInvariantsRec(e.child, expected_level - 1,
                                                e.mbr, false, point_count));
  }
  return Status::OK();
}

}  // namespace rcj
