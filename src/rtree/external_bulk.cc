// External-memory STR bulk loading (RTree::BulkLoadStrExternal).
//
// Classic two-phase external sort specialized to STR tiling:
//
//   1. Run formation — consume the PointSource in bounded batches, sort
//      each batch with StrLessByX, and spill it as a raw binary run file.
//   2. Merge + tile — k-way merge the runs back into the globally x-sorted
//      stream (StrLessByX is a total order, so the merge reproduces
//      std::sort's output exactly), accumulate one vertical slab at a
//      time, sort it by StrLessByY in memory, and emit leaf pages.
//
// Peak memory is one run buffer plus the per-run merge buffers plus one
// slab (~per_slab = ceil(n / ceil(sqrt(#leaves))) records) plus one
// BranchEntry per leaf — everything else streams to the page store, so a
// 10^8-point tree builds in a few hundred MB instead of holding 2.4 GB of
// points. Slab and leaf boundaries use the same integer arithmetic as the
// in-memory loader, and the shared EmitBulkLeaf/PackBulkUpperLevels tail
// allocates pages in the same order, so the resulting page store is
// byte-identical to BulkLoadStr on the same input.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include <unistd.h>

#include "rtree/rtree.h"

namespace rcj {
namespace {

/// Records buffered per run during the merge (16K records = 384 KiB).
constexpr size_t kMergeBufRecords = 16 * 1024;

/// Temporary spill files, unlinked on scope exit (including error paths).
struct SpillFiles {
  std::vector<std::string> paths;
  ~SpillFiles() {
    for (const std::string& path : paths) std::remove(path.c_str());
  }
};

/// Buffered sequential reader over one sorted run file.
struct RunReader {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file{nullptr, std::fclose};
  std::vector<PointRecord> buf;
  size_t pos = 0;
  size_t avail = 0;

  bool Refill() {
    avail = std::fread(buf.data(), sizeof(PointRecord), buf.size(),
                       file.get());
    pos = 0;
    return avail > 0;
  }
  /// Advances to the next record; false at end of run.
  bool Advance(PointRecord* out) {
    if (pos >= avail && !Refill()) return false;
    *out = buf[pos++];
    return true;
  }
};

struct HeapEntry {
  PointRecord rec;
  size_t run;
};

/// Min-heap order on the x total order (no ties: ids are unique).
struct HeapGreater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return StrLessByX(b.rec, a.rec);
  }
};

}  // namespace

Status RTree::BulkLoadStrExternal(PointSource* source,
                                  const std::string& spill_dir,
                                  size_t run_points) {
  if (height_ != 0 || num_points_ != 0) {
    return Status::InvalidArgument(
        "BulkLoadStrExternal requires an empty tree");
  }
  const uint64_t total = source->size();
  if (total == 0) return Status::OK();
  if (run_points == 0) run_points = 1;
  const size_t n = static_cast<size_t>(total);

  uint32_t leaf_fill = 0, branch_fill = 0;
  BulkFills(&leaf_fill, &branch_fill);

  // ---- Phase 1: sorted run formation ------------------------------------
  static std::atomic<uint64_t> next_spill_id{1};
  const uint64_t spill_id =
      next_spill_id.fetch_add(1, std::memory_order_relaxed);
  SpillFiles spill;
  {
    std::vector<PointRecord> run;
    run.resize(std::min<size_t>(run_points, n));
    uint64_t consumed = 0;
    for (;;) {
      size_t filled = 0;
      while (filled < run.size()) {
        Result<size_t> got =
            source->Next(run.data() + filled, run.size() - filled);
        if (!got.ok()) return got.status();
        if (got.value() == 0) break;
        filled += got.value();
      }
      if (filled == 0) break;
      consumed += filled;
      std::sort(run.begin(), run.begin() + static_cast<std::ptrdiff_t>(filled),
                StrLessByX);
      std::string path = spill_dir + "/rcj_spill_" +
                         std::to_string(::getpid()) + "_" +
                         std::to_string(spill_id) + "_" +
                         std::to_string(spill.paths.size()) + ".run";
      std::FILE* file = std::fopen(path.c_str(), "wb");
      if (file == nullptr) {
        return Status::IoError("cannot create spill run: " + path);
      }
      spill.paths.push_back(path);
      const size_t written =
          std::fwrite(run.data(), sizeof(PointRecord), filled, file);
      const bool flushed = std::fclose(file) == 0;
      if (written != filled || !flushed) {
        return Status::IoError("short write to spill run: " + path);
      }
      if (filled < run.size()) break;  // source exhausted mid-run
    }
    if (consumed != total) {
      return Status::InvalidArgument(
          "PointSource yielded a different count than its size()");
    }
  }

  // ---- Phase 2: k-way merge into slabs, tile, emit leaves ---------------
  std::vector<RunReader> readers(spill.paths.size());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> heap;
  for (size_t i = 0; i < readers.size(); ++i) {
    readers[i].file.reset(std::fopen(spill.paths[i].c_str(), "rb"));
    if (readers[i].file == nullptr) {
      return Status::IoError("cannot reopen spill run: " + spill.paths[i]);
    }
    readers[i].buf.resize(kMergeBufRecords);
    PointRecord rec;
    if (readers[i].Advance(&rec)) heap.push(HeapEntry{rec, i});
  }

  // Identical boundary arithmetic to the in-memory loader.
  const size_t num_leaves = (n + leaf_fill - 1) / leaf_fill;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t per_slab = (n + num_slabs - 1) / num_slabs;

  std::vector<BranchEntry> level_entries;
  level_entries.reserve(num_leaves);
  std::vector<PointRecord> slab;
  slab.reserve(per_slab);
  uint64_t merged = 0;

  const auto flush_slab = [&]() -> Status {
    std::sort(slab.begin(), slab.end(), StrLessByY);
    for (size_t begin = 0; begin < slab.size(); begin += leaf_fill) {
      const size_t end = std::min(slab.size(), begin + leaf_fill);
      RINGJOIN_RETURN_IF_ERROR(
          EmitBulkLeaf(slab.data() + begin, end - begin, &level_entries));
    }
    slab.clear();
    return Status::OK();
  };

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    slab.push_back(top.rec);
    ++merged;
    PointRecord rec;
    if (readers[top.run].Advance(&rec)) heap.push(HeapEntry{rec, top.run});
    if (slab.size() == per_slab) {
      RINGJOIN_RETURN_IF_ERROR(flush_slab());
    }
  }
  if (!slab.empty()) {
    RINGJOIN_RETURN_IF_ERROR(flush_slab());
  }
  if (merged != total) {
    return Status::Corruption("spill runs lost records during the merge");
  }

  num_points_ = n;
  return PackBulkUpperLevels(std::move(level_entries), branch_fill);
}

}  // namespace rcj
