#include "rtree/inn_cursor.h"

namespace rcj {

InnCursor::InnCursor(const RTree* tree, const Point& query)
    : tree_(tree), query_(query) {
  if (tree_->height() == 0) return;
  HeapItem root;
  root.key = 0.0;
  root.is_point = false;
  root.child_page = tree_->root_page();
  heap_.push(root);
}

bool InnCursor::Next(PointRecord* out, double* dist2_out) {
  while (!heap_.empty()) {
    HeapItem top = heap_.top();
    heap_.pop();
    if (top.is_point) {
      *out = top.rec;
      if (dist2_out != nullptr) *dist2_out = top.key;
      return true;
    }
    Result<Node> node = tree_->ReadNode(top.child_page);
    if (!node.ok()) {
      status_ = node.status();
      return false;
    }
    if (node.value().is_leaf()) {
      for (const LeafEntry& e : node.value().points) {
        HeapItem item;
        item.key = Dist2(query_, e.rec.pt);
        item.is_point = true;
        item.rec = e.rec;
        heap_.push(item);
      }
    } else {
      for (const BranchEntry& e : node.value().children) {
        HeapItem item;
        item.key = e.mbr.MinDist2(query_);
        item.is_point = false;
        item.child_page = e.child;
        heap_.push(item);
      }
    }
  }
  return false;
}

Result<std::vector<PointRecord>> RTree::Knn(const Point& q, size_t k) const {
  std::vector<PointRecord> out;
  out.reserve(k);
  InnCursor cursor(this, q);
  PointRecord rec;
  while (out.size() < k && cursor.Next(&rec)) {
    out.push_back(rec);
  }
  if (!cursor.status().ok()) return cursor.status();
  return out;
}

}  // namespace rcj
