// On-page R-tree node layout and its in-memory decoded form.
//
// A node occupies exactly one page:
//   [u16 level][u16 count][u32 pad]  (8-byte header)
//   level == 0 (leaf):    count * LeafEntry    {x f64, y f64, id i64}  24 B
//   level  > 0 (branch):  count * BranchEntry  {mbr 4xf64, child u64}  40 B
//
// With the paper's 1 KiB pages this yields fanouts of 42 (leaf) and 25
// (branch), matching the order of magnitude in the original experiments.
#ifndef RINGJOIN_RTREE_NODE_H_
#define RINGJOIN_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace rcj {

/// Leaf slot: one indexed point.
struct LeafEntry {
  PointRecord rec;

  Rect Mbr() const { return Rect::FromPoint(rec.pt); }
};

/// Branch slot: child page and the MBR of its whole subtree.
struct BranchEntry {
  Rect mbr;
  uint64_t child = 0;

  const Rect& Mbr() const { return mbr; }
};

/// Decoded R-tree node. Exactly one of `points` / `children` is populated,
/// by `level`. Nodes may transiently exceed page capacity in memory during
/// insertion (the overflow is resolved by reinsert/split before the node is
/// ever serialized).
class Node {
 public:
  /// 0 for leaves; the root has the highest level.
  uint32_t level = 0;

  std::vector<LeafEntry> points;
  std::vector<BranchEntry> children;

  bool is_leaf() const { return level == 0; }

  size_t size() const { return is_leaf() ? points.size() : children.size(); }

  /// Exact MBR over all entries.
  Rect ComputeMbr() const;

  /// Max leaf entries per page of this size.
  static uint32_t LeafCapacity(uint32_t page_size);
  /// Max branch entries per page of this size.
  static uint32_t BranchCapacity(uint32_t page_size);

  /// Encodes into `out` (page_size bytes). The node must fit.
  void SerializeTo(uint8_t* out, uint32_t page_size) const;

  /// Decodes a node from a page image.
  static Status Deserialize(const uint8_t* in, uint32_t page_size, Node* out);
};

}  // namespace rcj

#endif  // RINGJOIN_RTREE_NODE_H_
