#include "rtree/node.h"

#include <cassert>
#include <cstring>

namespace rcj {
namespace {

constexpr uint32_t kNodeHeaderBytes = 8;
constexpr uint32_t kLeafEntryBytes = 24;   // x, y, id
constexpr uint32_t kBranchEntryBytes = 40; // 4 mbr doubles + child

// memcpy-based unaligned scalar access (the page buffer has no alignment
// guarantees for doubles).
template <typename T>
T LoadScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void StoreScalar(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace

Rect Node::ComputeMbr() const {
  Rect mbr = Rect::Empty();
  if (is_leaf()) {
    for (const LeafEntry& e : points) mbr.Expand(e.rec.pt);
  } else {
    for (const BranchEntry& e : children) mbr.ExpandRect(e.mbr);
  }
  return mbr;
}

uint32_t Node::LeafCapacity(uint32_t page_size) {
  assert(page_size > kNodeHeaderBytes + kLeafEntryBytes);
  return (page_size - kNodeHeaderBytes) / kLeafEntryBytes;
}

uint32_t Node::BranchCapacity(uint32_t page_size) {
  assert(page_size > kNodeHeaderBytes + kBranchEntryBytes);
  return (page_size - kNodeHeaderBytes) / kBranchEntryBytes;
}

void Node::SerializeTo(uint8_t* out, uint32_t page_size) const {
  const size_t count = size();
  assert(count <= (is_leaf() ? LeafCapacity(page_size)
                             : BranchCapacity(page_size)));
  (void)page_size;
  StoreScalar<uint16_t>(out, static_cast<uint16_t>(level));
  StoreScalar<uint16_t>(out + 2, static_cast<uint16_t>(count));
  StoreScalar<uint32_t>(out + 4, 0);
  uint8_t* cursor = out + kNodeHeaderBytes;
  if (is_leaf()) {
    for (const LeafEntry& e : points) {
      StoreScalar<double>(cursor + 0, e.rec.pt.x);
      StoreScalar<double>(cursor + 8, e.rec.pt.y);
      StoreScalar<int64_t>(cursor + 16, e.rec.id);
      cursor += kLeafEntryBytes;
    }
  } else {
    for (const BranchEntry& e : children) {
      StoreScalar<double>(cursor + 0, e.mbr.lo.x);
      StoreScalar<double>(cursor + 8, e.mbr.lo.y);
      StoreScalar<double>(cursor + 16, e.mbr.hi.x);
      StoreScalar<double>(cursor + 24, e.mbr.hi.y);
      StoreScalar<uint64_t>(cursor + 32, e.child);
      cursor += kBranchEntryBytes;
    }
  }
}

Status Node::Deserialize(const uint8_t* in, uint32_t page_size, Node* out) {
  const uint16_t level = LoadScalar<uint16_t>(in);
  const uint16_t count = LoadScalar<uint16_t>(in + 2);
  out->level = level;
  out->points.clear();
  out->children.clear();
  const uint32_t capacity =
      level == 0 ? LeafCapacity(page_size) : BranchCapacity(page_size);
  if (count > capacity) {
    return Status::Corruption("node entry count exceeds page capacity");
  }
  const uint8_t* cursor = in + kNodeHeaderBytes;
  if (level == 0) {
    out->points.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      LeafEntry e;
      e.rec.pt.x = LoadScalar<double>(cursor + 0);
      e.rec.pt.y = LoadScalar<double>(cursor + 8);
      e.rec.id = LoadScalar<int64_t>(cursor + 16);
      out->points.push_back(e);
      cursor += kLeafEntryBytes;
    }
  } else {
    out->children.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      BranchEntry e;
      e.mbr.lo.x = LoadScalar<double>(cursor + 0);
      e.mbr.lo.y = LoadScalar<double>(cursor + 8);
      e.mbr.hi.x = LoadScalar<double>(cursor + 16);
      e.mbr.hi.y = LoadScalar<double>(cursor + 24);
      e.child = LoadScalar<uint64_t>(cursor + 32);
      out->children.push_back(e);
      cursor += kBranchEntryBytes;
    }
  }
  return Status::OK();
}

}  // namespace rcj
