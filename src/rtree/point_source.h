// Streaming input for the external-memory bulk loader: a forward iterator
// over a pointset of known cardinality, consumed in bounded-size batches so
// a 10^7–10^8-point build never holds the whole set in RAM.
#ifndef RINGJOIN_RTREE_POINT_SOURCE_H_
#define RINGJOIN_RTREE_POINT_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"

namespace rcj {

/// A one-pass stream of PointRecords with a cardinality known up front
/// (STR needs |S| to compute slab and leaf boundaries before reading).
///
/// Thread safety: none — a source is consumed by one builder thread.
/// Lifetime: must outlive the bulk-load call that consumes it.
class PointSource {
 public:
  virtual ~PointSource() = default;

  /// Total number of points this source will yield.
  virtual uint64_t size() const = 0;

  /// Fills `out` with up to `max` records, returning how many were
  /// produced; 0 means the stream is exhausted. The sum of all returns
  /// must equal size().
  virtual Result<size_t> Next(PointRecord* out, size_t max) = 0;
};

/// Adapter over an in-memory vector (tests, and callers whose data already
/// fits in RAM but who want the external build path's bounded page-write
/// behaviour). Does not own the vector; it must outlive the source.
class VectorPointSource : public PointSource {
 public:
  explicit VectorPointSource(const std::vector<PointRecord>* records)
      : records_(records) {}

  uint64_t size() const override { return records_->size(); }

  Result<size_t> Next(PointRecord* out, size_t max) override {
    const size_t n = std::min(max, records_->size() - position_);
    for (size_t i = 0; i < n; ++i) out[i] = (*records_)[position_ + i];
    position_ += n;
    return n;
  }

 private:
  const std::vector<PointRecord>* records_;
  size_t position_ = 0;
};

}  // namespace rcj

#endif  // RINGJOIN_RTREE_POINT_SOURCE_H_
