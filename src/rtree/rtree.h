// Disk-based R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) —
// the index the paper assumes for both input pointsets ("Each dataset is
// indexed by an R*-tree with disk page size of 1K bytes", Section 5).
//
// Every node visit is routed through a shared BufferManager so that page
// faults — and therefore the paper's charged I/O time — are measured
// exactly. The tree supports one-by-one R* insertion (ChooseSubtree with
// minimum overlap enlargement at the leaf level, forced reinsertion, and the
// R* topological split) as well as sort-tile-recursive (STR) bulk loading.
#ifndef RINGJOIN_RTREE_RTREE_H_
#define RINGJOIN_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "geometry/circle.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/node.h"
#include "rtree/point_source.h"
#include "storage/buffer_manager.h"
#include "storage/page_store.h"

namespace rcj {

/// The deterministic total orders STR bulk loading tiles with: primary
/// coordinate, then the other coordinate, then id. Being total (ids are
/// unique), a sort under them has exactly one result — which is what lets
/// the external-memory loader reproduce the in-memory loader byte for
/// byte.
bool StrLessByX(const PointRecord& a, const PointRecord& b);
bool StrLessByY(const PointRecord& a, const PointRecord& b);

/// Tuning knobs; defaults follow the R*-tree paper's recommendations.
struct RTreeOptions {
  /// Minimum node fill as a fraction of capacity (R*: 40%).
  double min_fill_fraction = 0.4;
  /// Fraction of entries removed by forced reinsertion (R*: 30%).
  double reinsert_fraction = 0.3;
  /// Disable to fall back to split-only overflow handling (Guttman-style).
  bool forced_reinsert = true;
  /// Target node occupancy for STR bulk loading; ~0.7 mimics the steady-
  /// state occupancy of an insertion-built tree.
  double bulk_fill_fraction = 0.7;
};

/// A disk-resident R*-tree over 2-D points. Not thread-safe (the paper's
/// algorithms are sequential); one tree owns no storage — the PageStore and
/// BufferManager are injected so several trees can share one buffer.
class RTree {
 public:
  /// Creates an empty tree. Page 0 of the store becomes the tree header.
  static Result<std::unique_ptr<RTree>> Create(PageStore* store,
                                               BufferManager* buffer,
                                               RTreeOptions options = {});

  /// Opens a tree previously persisted with SaveHeader().
  static Result<std::unique_ptr<RTree>> Open(PageStore* store,
                                             BufferManager* buffer,
                                             RTreeOptions options = {});

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(RTree);

  /// R* insertion of one point.
  Status Insert(const PointRecord& rec);

  /// Deletes the point matching `rec` (by coordinates and id). Underflowed
  /// nodes are condensed: their remaining points are collected and
  /// reinserted, and the root chain is shrunk when it degenerates.
  /// `*found` reports whether the point existed; deleting a missing point
  /// is not an error.
  Status Delete(const PointRecord& rec, bool* found);

  /// Sort-tile-recursive bulk load. The tree must be empty.
  Status BulkLoadStr(std::vector<PointRecord> recs);

  /// External-memory STR bulk load: consumes `source` once, spilling
  /// StrLessByX-sorted runs of `run_points` records to temporary files
  /// under `spill_dir` and merging them back, so peak memory is one run
  /// plus the merge buffers — independent of |S|. Produces a page store
  /// byte-identical to BulkLoadStr on the same points (same total orders,
  /// same slab arithmetic, same allocation order). The tree must be empty.
  Status BulkLoadStrExternal(PointSource* source,
                             const std::string& spill_dir,
                             size_t run_points = size_t{1} << 20);

  /// Persists tree metadata to the header page and flushes the buffer.
  Status SaveHeader();

  // ---- Queries ---------------------------------------------------------

  /// All points inside the closed rectangle `box`.
  Status RangeSearch(const Rect& box, std::vector<PointRecord>* out) const;

  /// All points strictly inside the open disk `circle` (the verification
  /// primitive of the ring constraint).
  Status CircleRangeStrict(const Circle& circle,
                           std::vector<PointRecord>* out) const;

  /// The k nearest neighbors of q in ascending distance order.
  Result<std::vector<PointRecord>> Knn(const Point& q, size_t k) const;

  /// Depth-first traversal over leaf nodes (paper Section 3.4's search
  /// order). The callback returns false to stop early.
  Status VisitLeavesDepthFirst(
      const std::function<bool(const Node&)>& callback) const;

  /// Leaf page numbers in depth-first order (for search-order ablations).
  Status CollectLeafPages(std::vector<uint64_t>* out) const;

  // ---- Low-level access for the join algorithms ------------------------

  /// Reads one node via the buffer manager (counts a logical access and
  /// possibly a fault).
  Result<Node> ReadNode(uint64_t page_no) const;

  bool empty() const { return num_points_ == 0; }
  uint64_t root_page() const { return root_page_; }
  /// Number of levels; 0 for an empty tree, 1 when the root is a leaf.
  uint32_t height() const { return height_; }
  uint64_t num_points() const { return num_points_; }
  /// Pages allocated in the backing store (including the header page) —
  /// the paper sizes buffers as a percentage of this.
  uint64_t num_pages() const { return store_->num_pages(); }
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  uint32_t branch_capacity() const { return branch_capacity_; }
  /// MBR of the whole dataset (empty rect if the tree is empty).
  Result<Rect> Bounds() const;

  BufferManager* buffer() const { return buffer_; }
  int store_id() const { return store_id_; }
  const RTreeOptions& options() const { return options_; }

  /// Structural integrity check used by tests: level consistency, fanout
  /// bounds, and exact parent-MBR/child-MBR agreement.
  Status CheckInvariants() const;

 private:
  RTree(PageStore* store, BufferManager* buffer, RTreeOptions options);

  // An entry being (re)inserted at a given target level: either a point
  // destined for a leaf (level 0) or a subtree handle.
  struct PendingEntry {
    Rect mbr;
    uint32_t target_level = 0;
    bool is_point = true;
    LeafEntry leaf;
    BranchEntry branch;
  };

  // One step of the descent path: the page, its decoded node, and the child
  // slot the descent took.
  struct PathStep {
    uint64_t page_no = 0;
    Node node;
    size_t child_idx = 0;
  };

  Status WriteNode(uint64_t page_no, const Node& node);
  Result<uint64_t> AllocateNode(const Node& node);

  // Shared tail of both bulk loaders: leaf emission and upper-level
  // packing, so the external path is allocation-order-identical to the
  // in-memory one by construction.
  Status EmitBulkLeaf(const PointRecord* recs, size_t count,
                      std::vector<BranchEntry>* level_entries);
  Status PackBulkUpperLevels(std::vector<BranchEntry> level_entries,
                             uint32_t branch_fill);
  /// leaf_fill/branch_fill from bulk_fill_fraction (clamped).
  void BulkFills(uint32_t* leaf_fill, uint32_t* branch_fill) const;

  Status InsertEntry(const PendingEntry& entry);
  // DFS for the leaf holding `rec`; fills the descent path (ancestors) and
  // the leaf itself. Returns found=false if no leaf contains the record.
  Status FindLeafRec(uint64_t page_no, const PointRecord& rec,
                     std::vector<PathStep>* path, uint64_t* leaf_page,
                     Node* leaf, bool* found) const;
  // Collects every point stored in the subtree under `page_no`.
  Status CollectSubtreePoints(uint64_t page_no,
                              std::vector<LeafEntry>* out) const;
  Status HandleOverflow(uint64_t page_no, Node node,
                        std::vector<PathStep>* path);
  Status ForcedReinsert(uint64_t page_no, Node node,
                        std::vector<PathStep>* path);
  Status SplitAndPropagate(uint64_t page_no, Node node,
                           std::vector<PathStep>* path);
  // Updates ancestors after the child at the end of `path` changed to
  // `child_mbr`.
  Status PropagateMbrUp(std::vector<PathStep>* path, Rect child_mbr);

  size_t ChooseSubtree(const Node& node, const Rect& mbr) const;
  void SplitNode(Node* node, Node* sibling) const;

  Status RangeSearchRec(uint64_t page_no, const Rect& box,
                        std::vector<PointRecord>* out) const;
  Status CircleRangeRec(uint64_t page_no, const Circle& circle,
                        std::vector<PointRecord>* out) const;
  Status VisitLeavesRec(uint64_t page_no,
                        const std::function<bool(const Node&)>& callback,
                        bool* keep_going) const;
  Status CheckInvariantsRec(uint64_t page_no, uint32_t expected_level,
                            const Rect& expected_mbr, bool is_root,
                            uint64_t* point_count) const;

  uint32_t NodeCapacity(const Node& node) const {
    return node.is_leaf() ? leaf_capacity_ : branch_capacity_;
  }
  uint32_t MinFill(const Node& node) const;

  PageStore* store_;
  BufferManager* buffer_;
  int store_id_;
  RTreeOptions options_;
  uint32_t leaf_capacity_;
  uint32_t branch_capacity_;

  uint64_t header_page_ = 0;
  uint64_t root_page_ = 0;
  uint32_t height_ = 0;  // 0 == empty tree
  uint64_t num_points_ = 0;

  // Per-level "overflow already treated" flags, reset at each Insert()
  // (R* forced reinsertion fires at most once per level per insertion).
  std::vector<bool> reinsert_done_;
};

}  // namespace rcj

#endif  // RINGJOIN_RTREE_RTREE_H_
