#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace rcj {
namespace obs {
namespace {

/// splitmix64 finalizer: spreads the (time, pid, counter) mix across all
/// 64 bits so concurrent processes starting in the same tick still get
/// distinct ids.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext::TraceContext(std::string id)
    : id_(id.empty() ? NewId() : std::move(id)),
      start_(TraceClock::now()) {}

std::string TraceContext::NewId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t ticks = static_cast<uint64_t>(
      TraceClock::now().time_since_epoch().count());
  const uint64_t salt =
      (static_cast<uint64_t>(::getpid()) << 32) ^
      counter.fetch_add(1, std::memory_order_relaxed);
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(Mix(ticks ^ Mix(salt))));
  return buffer;
}

void TraceContext::Record(const std::string& name, int depth,
                          TraceClock::time_point start,
                          TraceClock::time_point end) {
  const double offset =
      std::max(0.0, std::chrono::duration<double>(start - start_).count());
  const double seconds =
      std::max(0.0, std::chrono::duration<double>(end - start).count());
  Add(name, depth, offset, seconds, 1);
}

void TraceContext::RecordSeconds(const std::string& name, int depth,
                                 double seconds, uint64_t count) {
  const double elapsed = ElapsedSeconds();
  const double offset = std::max(0.0, elapsed - std::max(0.0, seconds));
  Add(name, depth, offset, std::max(0.0, seconds), count);
}

double TraceContext::ElapsedSeconds() const {
  return std::chrono::duration<double>(TraceClock::now() - start_).count();
}

void TraceContext::Add(const std::string& name, int depth,
                       double start_offset, double seconds, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpan& span = spans_[{depth, name}];
  if (span.count == 0) {
    span.name = name;
    span.depth = depth;
    span.start_seconds = start_offset;
  } else {
    span.start_seconds = std::min(span.start_seconds, start_offset);
  }
  span.count += count;
  span.total_seconds += seconds;
}

std::vector<TraceSpan> TraceContext::Spans() const {
  std::vector<TraceSpan> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(spans_.size());
    for (const auto& entry : spans_) out.push_back(entry.second);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.start_seconds != b.start_seconds) {
                return a.start_seconds < b.start_seconds;
              }
              if (a.depth != b.depth) return a.depth < b.depth;
              return a.name < b.name;
            });
  return out;
}

}  // namespace obs
}  // namespace rcj
