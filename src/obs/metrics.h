// Process-wide metrics: counters, gauges, and fixed-boundary latency
// histograms behind a named registry, rendered as Prometheus-style text
// exposition for the METRICS wire command.
//
// Hot-path cost model: a Counter::Add or Histogram::Observe is one relaxed
// atomic RMW on a cache-line-padded stripe picked per thread, so concurrent
// writers do not bounce a shared line; scrapes merge the stripes exactly
// (monotonic counters never lose increments). Instrumentation sites cache
// the metric pointer once (registry lookups take a mutex) — the idiom is a
// function-local static:
//
//   static obs::Counter* opens =
//       obs::MetricsRegistry::Default().counter("rcj_worker_view_opens_total");
//   opens->Add();
//
// Metric names are opaque strings; Prometheus-style labels are simply part
// of the name (`rcj_fleet_backend_up{backend="0"}`), and the renderer
// splices histogram suffixes (`_bucket`/`_sum`/`_count`) around the label
// block.
//
// Compile-time kill switch: building with -DRINGJOIN_NO_METRICS turns every
// Add/Set/Observe into an inline no-op (the registry still answers METRICS,
// with zeros). Runtime switch: SetMetricsEnabled(false) skips the stripe
// write behind one relaxed load — the knob the overhead microbench flips to
// price the instrumentation (see bench_engine_scaling).
#ifndef RINGJOIN_OBS_METRICS_H_
#define RINGJOIN_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"

namespace rcj {
namespace obs {

/// Stripe count of counters and histograms. More stripes cost memory
/// (one cache line each) and scrape-time adds; fewer cost hot-path
/// contention. 16 covers the engine's default worker counts.
constexpr size_t kMetricStripes = 16;

/// Runtime instrumentation switch (default on). Relaxed; flipping it only
/// affects subsequent Add/Set/Observe calls.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {

/// Stable per-thread stripe index in [0, kMetricStripes).
size_t AssignStripe();

inline size_t StripeIndex() {
  thread_local const size_t stripe = AssignStripe();
  return stripe;
}

/// fetch_add for doubles (C++17 has no atomic<double>::fetch_add).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotonic counter. Thread-safe; Value() merges the stripes exactly.
class Counter {
 public:
  Counter() = default;
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Add(uint64_t delta = 1) {
#if defined(RINGJOIN_NO_METRICS)
    (void)delta;
#else
    if (!MetricsEnabled()) return;
    stripes_[internal::StripeIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  Stripe stripes_[kMetricStripes];
};

/// Last-write-wins signed gauge (queue depths, up/down flags).
class Gauge {
 public:
  Gauge() = default;
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(int64_t value) {
#if defined(RINGJOIN_NO_METRICS)
    (void)value;
#else
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
#endif
  }

  void Add(int64_t delta) {
#if defined(RINGJOIN_NO_METRICS)
    (void)delta;
#else
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#endif
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A scraped histogram: per-bucket counts (one extra overflow bucket past
/// the last boundary), total count, and the sum of observed values.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< ascending upper bounds.
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 buckets.
  uint64_t count = 0;
  double sum = 0.0;

  /// Linear interpolation inside the target bucket (the Prometheus
  /// histogram_quantile estimate); q in [0, 1]. Observations past the last
  /// boundary clamp to it. 0 when empty.
  double Quantile(double q) const;
};

/// Fixed-boundary histogram. Observe() is one relaxed atomic add on the
/// thread's stripe plus a CAS-loop add for the sum.
class Histogram {
 public:
  /// `bounds` are strictly ascending upper bucket boundaries; an implicit
  /// +Inf bucket catches the rest.
  explicit Histogram(std::vector<double> bounds);
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Observe(double value) {
#if defined(RINGJOIN_NO_METRICS)
    (void)value;
#else
    if (!MetricsEnabled()) return;
    size_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
    Stripe& stripe = stripes_[internal::StripeIndex()];
    stripe.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(&stripe.sum, value);
#endif
  }

  HistogramSnapshot Snap() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::unique_ptr<Stripe[]> stripes_;
};

/// The latency boundaries every rcj_*_seconds histogram uses unless it
/// asks for its own: 100µs .. 10s, roughly 2.5x steps (documented in
/// docs/OBSERVABILITY.md).
const std::vector<double>& DefaultLatencyBounds();

/// One slow query, as remembered by the ring buffer.
struct SlowQueryEntry {
  double wall_seconds = 0.0;
  uint64_t pairs = 0;
  std::string trace_id;  ///< empty when the query was not traced.
  std::string env;
  std::string detail;  ///< free-form (status / END summary), single line.
};

/// Threshold-gated ring buffer of the slowest recent queries. Disabled
/// until Configure() sets a non-negative threshold.
class SlowQueryLog {
 public:
  SlowQueryLog() = default;
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(SlowQueryLog);

  /// threshold_seconds < 0 disables recording; 0 records every query.
  void Configure(double threshold_seconds, size_t capacity = 64);

  bool enabled() const;
  double threshold_seconds() const;

  /// Records the entry iff enabled and entry.wall_seconds >= threshold.
  void MaybeRecord(const SlowQueryEntry& entry);

  /// Oldest first.
  std::vector<SlowQueryEntry> Dump() const;

 private:
  mutable std::mutex mu_;
  double threshold_seconds_ = -1.0;
  size_t capacity_ = 64;
  std::deque<SlowQueryEntry> entries_;
};

/// Name-keyed home of the process's metrics. Lookup takes a mutex and
/// returns a stable pointer (metrics are never removed); hot paths look up
/// once and cache. Default() is the process-wide instance every layer and
/// the METRICS wire command share; tests may build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  static MetricsRegistry& Default();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Registers (or finds) a histogram. The first registration fixes the
  /// boundaries; later calls ignore `bounds`. Empty bounds means
  /// DefaultLatencyBounds().
  Histogram* histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  SlowQueryLog* slow_log() { return &slow_log_; }

  /// The Prometheus text exposition of every registered metric (sorted by
  /// name, `# TYPE` comments included) plus one `# slowlog ...` comment
  /// per slow-query entry. Each line is newline-terminated.
  std::string RenderPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  SlowQueryLog slow_log_;
};

}  // namespace obs
}  // namespace rcj

#endif  // RINGJOIN_OBS_METRICS_H_
