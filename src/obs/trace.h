// Per-query tracing: a TraceContext travels with one query (via
// QuerySpec::trace) and collects timed spans from every layer it crosses —
// admission, snapshot pin, view opens, leaf-chunk execution, I/O wall,
// sink flush, and the fleet tier's dial/retry/backoff/replay.
//
// Spans aggregate by (depth, name): a query that executes 200 leaf chunks
// records one "leaf_chunk" span with count=200 and the summed duration,
// so the wire representation (TRACE lines, protocol.h) stays a handful of
// lines regardless of fan-out. Depth is assigned by the recording site
// (0 = the request, 1 = a stage of it, 2 = inside a stage) and renders the
// tree; start offsets are relative to the context's creation.
//
// Recording is mutex-guarded — engine workers record concurrently — but a
// query pays nothing unless it was traced: every instrumented site first
// checks `spec.trace != nullptr`.
#ifndef RINGJOIN_OBS_TRACE_H_
#define RINGJOIN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace rcj {
namespace obs {

using TraceClock = std::chrono::steady_clock;

/// One aggregated span of a trace.
struct TraceSpan {
  std::string name;
  int depth = 0;
  uint64_t count = 0;          ///< merged occurrences.
  double total_seconds = 0.0;  ///< summed duration across occurrences.
  double start_seconds = 0.0;  ///< earliest start, relative to the trace.
};

/// The per-query trace: an id plus the aggregated spans. Thread-safe.
class TraceContext {
 public:
  /// Starts the trace clock now. An empty id is replaced with NewId().
  explicit TraceContext(std::string id = "");
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(TraceContext);

  /// A fresh process-unique id (16 lowercase hex chars).
  static std::string NewId();

  const std::string& id() const { return id_; }
  TraceClock::time_point start_time() const { return start_; }

  /// Records one timed occurrence of (depth, name).
  void Record(const std::string& name, int depth,
              TraceClock::time_point start, TraceClock::time_point end);

  /// Records `count` occurrences totalling `seconds` when only a duration
  /// is known (e.g. an I/O wall-clock sum); the start offset is taken as
  /// "now minus seconds", clamped to the trace start.
  void RecordSeconds(const std::string& name, int depth, double seconds,
                     uint64_t count = 1);

  /// Elapsed seconds since the trace started.
  double ElapsedSeconds() const;

  /// The aggregated spans, ordered for tree rendering: by start offset,
  /// then depth, then name.
  std::vector<TraceSpan> Spans() const;

 private:
  void Add(const std::string& name, int depth, double start_offset,
           double seconds, uint64_t count);

  std::string id_;
  TraceClock::time_point start_;
  mutable std::mutex mu_;
  std::map<std::pair<int, std::string>, TraceSpan> spans_;
};

/// RAII recorder: times its scope into `trace` (null trace = no-op).
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, const char* name, int depth)
      : trace_(trace), name_(name), depth_(depth) {
    if (trace_ != nullptr) start_ = TraceClock::now();
  }

  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->Record(name_, depth_, start_, TraceClock::now());
    }
  }

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(ScopedSpan);

 private:
  TraceContext* trace_;
  const char* name_;
  int depth_;
  TraceClock::time_point start_;
};

}  // namespace obs
}  // namespace rcj

#endif  // RINGJOIN_OBS_TRACE_H_
