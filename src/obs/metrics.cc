#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace rcj {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

std::string FormatMetricDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Splits "name{labels}" into the bare name and the "{labels}" block
/// (empty when the name carries no labels).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);
  }
}

/// "name{a="b"}" + suffix "_bucket" + le label -> name_bucket{a="b",le="x"}.
std::string SpliceName(const std::string& base, const std::string& labels,
                       const char* suffix, const std::string& le) {
  std::string out = base + suffix;
  if (le.empty()) {
    out += labels;
    return out;
  }
  if (labels.empty()) {
    out += "{le=\"" + le + "\"}";
  } else {
    out += labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t AssignStripe() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
}

}  // namespace internal

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next_seen = seen + counts[i];
    if (static_cast<double>(next_seen) >= target) {
      // The overflow bucket has no upper bound; clamp to the last boundary
      // (bounded error is better than infinity for a summary row).
      if (i >= bounds.size()) {
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double into =
          (target - static_cast<double>(seen)) /
          static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
    }
    seen = next_seen;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), stripes_(new Stripe[kMetricStripes]) {
  for (size_t s = 0; s < kMetricStripes; ++s) {
    stripes_[s].counts.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      stripes_[s].counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

HistogramSnapshot Histogram::Snap() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (size_t s = 0; s < kMetricStripes; ++s) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += stripes_[s].counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += stripes_[s].sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> bounds = {
      0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
      0.05,   0.1,     0.25,   0.5,   1.0,    2.5,   5.0,  10.0};
  return bounds;
}

void SlowQueryLog::Configure(double threshold_seconds, size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_seconds_ = threshold_seconds;
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

bool SlowQueryLog::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_seconds_ >= 0.0;
}

double SlowQueryLog::threshold_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_seconds_;
}

void SlowQueryLog::MaybeRecord(const SlowQueryEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (threshold_seconds_ < 0.0 || entry.wall_seconds < threshold_seconds_) {
    return;
  }
  entries_.push_back(entry);
  if (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryEntry>(entries_.begin(), entries_.end());
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(bounds.empty() ? DefaultLatencyBounds()
                                            : bounds));
  }
  return slot.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string base;
  std::string labels;
  // Maps are name-sorted, so label variants of one base name are adjacent
  // and get a single # TYPE header.
  std::string last_typed;
  const auto type_header = [&](const std::string& metric_base,
                               const char* type) {
    if (metric_base == last_typed) return;
    last_typed = metric_base;
    out += "# TYPE " + metric_base + " " + type + "\n";
  };
  for (const auto& entry : counters_) {
    SplitLabels(entry.first, &base, &labels);
    type_header(base, "counter");
    out += entry.first + " " + std::to_string(entry.second->Value()) + "\n";
  }
  for (const auto& entry : gauges_) {
    SplitLabels(entry.first, &base, &labels);
    type_header(base, "gauge");
    out += entry.first + " " + std::to_string(entry.second->Value()) + "\n";
  }
  for (const auto& entry : histograms_) {
    SplitLabels(entry.first, &base, &labels);
    type_header(base, "histogram");
    const HistogramSnapshot snap = entry.second->Snap();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      cumulative += snap.counts[b];
      const std::string le = b < snap.bounds.size()
                                 ? FormatMetricDouble(snap.bounds[b])
                                 : std::string("+Inf");
      out += SpliceName(base, labels, "_bucket", le) + " " +
             std::to_string(cumulative) + "\n";
    }
    out += SpliceName(base, labels, "_sum", "") + " " +
           FormatMetricDouble(snap.sum) + "\n";
    out += SpliceName(base, labels, "_count", "") + " " +
           std::to_string(snap.count) + "\n";
  }
  for (const SlowQueryEntry& entry : slow_log_.Dump()) {
    out += "# slowlog wall_s=" + FormatMetricDouble(entry.wall_seconds) +
           " pairs=" + std::to_string(entry.pairs) + " env=" + entry.env;
    if (!entry.trace_id.empty()) out += " trace=" + entry.trace_id;
    if (!entry.detail.empty()) {
      out += " ";
      for (char c : entry.detail) {
        out += (c == '\n' || c == '\r') ? ' ' : c;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace rcj
