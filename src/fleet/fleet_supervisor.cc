#include "fleet/fleet_supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace rcj {
namespace fleet {
namespace {

/// Fleet-tier health metrics: death/respawn totals plus a per-backend
/// up/down gauge (labelled by backend index) the smoke can watch flip.
struct SupervisorMetrics {
  obs::Counter* deaths;
  obs::Counter* respawns;

  static SupervisorMetrics& Get() {
    static SupervisorMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      SupervisorMetrics m;
      m.deaths = registry.counter("rcj_fleet_backend_deaths_total");
      m.respawns = registry.counter("rcj_fleet_backend_respawns_total");
      return m;
    }();
    return metrics;
  }
};

obs::Gauge* BackendUpGauge(size_t index) {
  static std::mutex mu;
  static std::vector<obs::Gauge*> gauges;
  std::lock_guard<std::mutex> lock(mu);
  while (gauges.size() <= index) {
    gauges.push_back(obs::MetricsRegistry::Default().gauge(
        "rcj_fleet_backend_up{backend=\"" + std::to_string(gauges.size()) +
        "\"}"));
  }
  return gauges[index];
}

/// Scans `text` from `*offset` for a serve startup line
/// ("listening on host:port (...)"), advancing `*offset` past consumed
/// full lines. True once a port was parsed.
bool FindListeningLine(const std::string& text, size_t* offset,
                       BackendAddress* address) {
  while (*offset < text.size()) {
    const size_t newline = text.find('\n', *offset);
    if (newline == std::string::npos) return false;  // partial line: wait
    const std::string line = text.substr(*offset, newline - *offset);
    *offset = newline + 1;
    if (line.rfind("listening on ", 0) != 0) continue;
    const size_t start = strlen("listening on ");
    const size_t space = line.find(' ', start);
    const std::string host_port =
        line.substr(start, space == std::string::npos ? std::string::npos
                                                      : space - start);
    BackendAddress parsed;
    if (ParseBackendAddress(host_port, &parsed).ok()) {
      *address = parsed;
      return true;
    }
  }
  return false;
}

/// Reads a whole file into `*out` (best-effort; empty on failure).
void ReadFileTail(const std::string& path, std::string* out) {
  out->clear();
  FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  std::fclose(file);
}

}  // namespace

FleetSupervisor::FleetSupervisor(FleetSupervisorOptions options)
    : options_(std::move(options)) {
  if (options_.backends == 0) options_.backends = 1;
}

FleetSupervisor::~FleetSupervisor() { Stop(); }

Status FleetSupervisor::Spawn(size_t index) {
  Backend& backend = backends_[index];
  const int log_fd = open(backend.log_path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (log_fd < 0) {
    return Status::IoError("open " + backend.log_path + ": " +
                           std::strerror(errno));
  }
  // Start scanning the log where it ends now: a respawn appends, and the
  // old process's lines must not satisfy the new port search.
  struct stat st;
  backend.log_scanned = fstat(log_fd, &st) == 0
                            ? static_cast<size_t>(st.st_size)
                            : 0;

  std::vector<std::string> args;
  args.push_back(options_.argv0);
  args.push_back("serve");
  for (const std::string& arg : options_.serve_args) args.push_back(arg);
  if (index < options_.per_backend_args.size()) {
    for (const std::string& arg : options_.per_backend_args[index]) {
      args.push_back(arg);
    }
  }
  args.push_back("--port");
  args.push_back("0");
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(&arg[0]);
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    close(log_fd);
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    dup2(log_fd, STDOUT_FILENO);
    dup2(log_fd, STDERR_FILENO);
    close(log_fd);
    execv(argv[0], argv.data());
    // Only reached when exec failed; report into the (redirected) log.
    std::fprintf(stderr, "exec %s: %s\n", argv[0], std::strerror(errno));
    _exit(127);
  }
  close(log_fd);
  backend.pid = pid;

  // Tail the log for the listening line to learn the ephemeral port.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.startup_timeout_ms);
  std::string log;
  while (std::chrono::steady_clock::now() < deadline) {
    int wait_status = 0;
    if (waitpid(pid, &wait_status, WNOHANG) == pid) {
      backend.pid = -1;
      return Status::IoError("backend " + std::to_string(index) +
                             " exited during startup; see " +
                             backend.log_path);
    }
    ReadFileTail(backend.log_path, &log);
    if (FindListeningLine(log, &backend.log_scanned, &backend.address)) {
      BackendUpGauge(index)->Set(1);
      return Status::OK();
    }
    poll(nullptr, 0, 20);
  }
  kill(pid, SIGKILL);
  waitpid(pid, nullptr, 0);
  backend.pid = -1;
  return Status::IoError("backend " + std::to_string(index) +
                         " did not report a port within " +
                         std::to_string(options_.startup_timeout_ms) +
                         "ms; see " + backend.log_path);
}

Status FleetSupervisor::Start() {
  if (mkdir(options_.log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + options_.log_dir + ": " +
                           std::strerror(errno));
  }
  backends_.resize(options_.backends);
  for (size_t i = 0; i < backends_.size(); ++i) {
    backends_[i].log_path =
        options_.log_dir + "/backend-" + std::to_string(i) + ".log";
  }
  started_ = true;
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Status status = Spawn(i);
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  return Status::OK();
}

void FleetSupervisor::Stop() {
  if (!started_) return;
  for (Backend& backend : backends_) {
    if (backend.pid > 0) kill(backend.pid, SIGTERM);
  }
  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& backend = backends_[i];
    if (backend.pid > 0) {
      waitpid(backend.pid, nullptr, 0);
      backend.pid = -1;
      BackendUpGauge(i)->Set(0);
    }
  }
  started_ = false;
}

std::vector<BackendAddress> FleetSupervisor::addresses() const {
  std::vector<BackendAddress> out;
  out.reserve(backends_.size());
  for (const Backend& backend : backends_) out.push_back(backend.address);
  return out;
}

size_t FleetSupervisor::Supervise(
    const std::function<void(size_t index, const BackendAddress& address)>&
        on_respawn) {
  size_t deaths = 0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    Backend& backend = backends_[i];
    if (backend.pid <= 0) continue;
    int wait_status = 0;
    if (waitpid(backend.pid, &wait_status, WNOHANG) != backend.pid) {
      continue;
    }
    ++deaths;
    backend.pid = -1;
    SupervisorMetrics::Get().deaths->Add();
    BackendUpGauge(i)->Set(0);
    if (!options_.respawn) continue;
    if (Spawn(i).ok()) {
      SupervisorMetrics::Get().respawns->Add();
      if (on_respawn) on_respawn(i, backend.address);
    }
  }
  return deaths;
}

}  // namespace fleet
}  // namespace rcj
