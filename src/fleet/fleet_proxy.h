// FleetProxy — the router tier that turns the wire protocol into a
// distribution substrate.
//
// The proxy speaks the existing line protocol on the front (a client
// cannot tell it from a single `rcj_tool serve` process — the CI smoke
// `cmp`s the byte streams to prove it) and proxies each conversation to
// one or more backend serve processes over TCP:
//
//   * QUERY — placed by consistent hash of the environment name (the
//     same StableHash that places environments on shards inside one
//     process), optionally fanned across a replica window of
//     `replicas` consecutive backends for read-mostly environments.
//     The response stream is relayed verbatim. Failures fail over:
//     a refused connection, an `ERR Overloaded` shed, or a backend
//     dying mid-stream moves the request to the next replica, with
//     capped exponential backoff + jitter between full replica cycles
//     (see retry.h). Because pair streams are deterministic and
//     byte-identical across engines, a mid-stream failover *replays*
//     the query on the next replica and skips the pairs already
//     forwarded — verifying each skipped line against a hash of what
//     was sent, so a diverging replica is surfaced as Corruption
//     rather than spliced into the stream.
//   * INSERT/DELETE/COMPACT — applied to every replica of the
//     environment (a replicated live environment must converge), and
//     acknowledged with the primary's MUT. Batches (many mutation
//     lines per connection) are relayed onto pooled backend
//     connections that persist across the batch.
//   * STATS — fanned out to every reachable backend; per-backend shard
//     rows are renumbered into one global index space and the ENDSTATS
//     totals are summed, so per-backend admission ledgers reconcile
//     into one exact fleet-wide count.
//
// The proxy holds no query state beyond the in-flight relay: environment
// registration lives on the backends, admission lives on the backends
// (an `ERR Overloaded` that survives the retry budget reaches the
// client), and determinism lives in the engines. That is what makes the
// tier stateless and horizontally stackable.
#ifndef RINGJOIN_FLEET_FLEET_PROXY_H_
#define RINGJOIN_FLEET_FLEET_PROXY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "fleet/backend_pool.h"
#include "fleet/retry.h"

namespace rcj {
namespace fleet {

struct FleetProxyOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port() after Start()).
  uint16_t port = 0;
  /// Listen address; loopback-only by default, like NetServer.
  std::string bind_address = "127.0.0.1";
  int backlog = 64;
  /// Cap on simultaneously served client connections (one thread each).
  size_t max_connections = 256;
  size_t max_request_bytes = 4096;
  /// Per-request-line delivery timeout (per line of a mutation batch).
  int request_timeout_ms = 10000;
  /// Read fan-out: a query for environment E may be served by any of the
  /// `replicas` backends following StableHash(E) around the ring.
  /// Clamped to [1, backend count]. Mutations always go to the whole
  /// window so replicated environments converge.
  size_t replicas = 1;
  /// Retry/backoff policy for failed backend attempts.
  RetryPolicy retry;
  /// Bound on the in-memory ring of recently relayed mutations (the
  /// catch-up feed for respawned replicas). A replica that fell further
  /// behind than the ring reaches cannot catch up incrementally and
  /// needs a full restore; size it to cover the longest expected outage.
  size_t mutation_ring_capacity = 4096;
  /// Test seam: sleeps `ms` between failed replica cycles. Defaults to a
  /// stop-aware condition-variable wait; tests inject a recorder.
  std::function<void(uint64_t ms)> sleep_fn;
  /// Pool sizing.
  BackendPoolOptions pool;
};

class FleetProxy {
 public:
  /// Monotonic counters of proxy outcomes. Backend-side dial counters
  /// live on the pool (pool().counters()).
  struct Counters {
    uint64_t connections = 0;      ///< accepted client sockets.
    uint64_t queries = 0;          ///< QUERY conversations begun.
    uint64_t ok = 0;               ///< full stream + END relayed.
    uint64_t rejected = 0;         ///< malformed requests (ERR before OK).
    uint64_t shed = 0;             ///< Overloaded relayed after retries.
    uint64_t failed = 0;           ///< backend ERR / exhausted retries.
    uint64_t cancelled = 0;        ///< client gone mid-relay.
    uint64_t retries = 0;          ///< backend attempts past the first.
    uint64_t failovers = 0;        ///< mid-stream replays on a replica.
    uint64_t backoffs = 0;         ///< sleeps between failed cycles.
    uint64_t stats = 0;            ///< STATS fan-outs answered.
    uint64_t mutations = 0;        ///< mutation ops acknowledged.
    uint64_t stats_backends_skipped = 0;  ///< unreachable during STATS.
    uint64_t metrics = 0;          ///< METRICS scrapes answered (locally).
    uint64_t expired = 0;          ///< deadlines blown (ERR DeadlineExceeded).
    uint64_t epoch_probes = 0;     ///< EPOCH handshakes sent to backends.
    uint64_t catchups = 0;         ///< replicas caught up and readmitted.
    uint64_t catchup_failures = 0; ///< CatchUp calls that left the exclusion.
    uint64_t excluded_skips = 0;   ///< attempts skipped over excluded replicas.
    uint64_t relay_exclusions = 0; ///< replicas excluded by a failed relay.
  };

  FleetProxy(std::vector<BackendAddress> backends,
             FleetProxyOptions options = {});
  ~FleetProxy();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(FleetProxy);

  /// Binds, listens, and starts accepting. IoError on bind/listen
  /// failure. The backends need not be up yet — placement is pure
  /// hashing, and a request simply retries per policy.
  Status Start();

  /// Stops accepting, unblocks every relay, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (resolves ephemeral port 0); valid after Start().
  uint16_t port() const { return port_; }

  size_t backend_count() const { return pool_.size(); }

  /// Rewrites one backend's address (supervisor respawn path).
  void SetBackendAddress(size_t index, BackendAddress address) {
    pool_.SetAddress(index, std::move(address));
  }

  /// The replica window for `env_name`: `replicas` consecutive backend
  /// indices starting at StableHash(env_name) % backends. Exposed so
  /// tests (and the supervisor's kill targeting) can predict placement.
  std::vector<size_t> ReplicaSet(const std::string& env_name) const;

  /// Marks one backend excluded from (or readmitted to) query fan-out
  /// and mutation relay. The supervisor sets the flag the moment it
  /// observes a death; CatchUp() clears it once the replica's epochs
  /// match the primary's again.
  void SetExcluded(size_t index, bool excluded);
  bool excluded(size_t index) const;

  /// The respawn handshake: for every environment the backend replicates
  /// that has ring history, probes the backend's and the primary's EPOCH,
  /// feeds the missing mutation suffix from the ring, and re-probes until
  /// the epochs match — only then is the exclusion flag cleared. Fails
  /// (and keeps the replica excluded) when the ring no longer reaches
  /// back to the replica's epoch: that replica needs a full restore.
  /// Serialized against in-flight mutation relays, so no mutation can
  /// slip between the feed and the readmission.
  Status CatchUp(size_t index);

  Counters counters() const;
  const BackendPool& pool() const { return pool_; }

 private:
  /// Per-connection state shared with Stop(): both socket fds are shut
  /// down to unblock the handler wherever it is blocked.
  struct Connection {
    std::mutex mu;
    int client_fd = -1;
    int backend_fd = -1;  ///< fd of the in-flight backend relay, if any.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ReapFinishedConnections();
  void HandleConnection(Connection* connection);
  void HandleQuery(Connection* connection, const std::string& line);
  void HandleStats(Connection* connection);
  /// Answers METRICS from this process's registry (the proxy's own
  /// counters); backend registries are scraped by dialing the backends.
  void HandleMetrics(Connection* connection);
  void HandleMutations(Connection* connection, std::string line,
                       std::string* carry);
  /// Relays one mutation line to every replica of its environment.
  /// On success fills `*reply` with the primary's OK + MUT frames; on
  /// failure fills it with the ERR frame and returns false (which ends
  /// the batch, matching backend behavior). `held` caches the pooled
  /// backend conversations across a batch.
  bool RelayMutation(Connection* connection, const std::string& line,
                     std::vector<std::unique_ptr<net::ProtocolClient>>* held,
                     std::string* reply);
  /// Sends buffered client-bound bytes; false once the client is gone.
  bool FlushToClient(Connection* connection, std::string* out);
  /// Stop-aware backoff sleep (or the injected sleep_fn).
  void Backoff(uint64_t ms);
  /// Publishes `fd` as the connection's in-flight backend socket so
  /// Stop() can shut it down; pass -1 to clear.
  void SetBackendFd(Connection* connection, int fd);

  /// One relayed mutation remembered for catch-up: the raw wire line and
  /// the epoch the (first acknowledging) replica landed it at.
  struct RingEntry {
    uint64_t epoch = 0;
    std::string env_name;
    std::string line;
  };

  /// One EPOCH handshake with backend `index` for `env_name`.
  Status ProbeEpoch(size_t index, const std::string& env_name,
                    uint64_t* epoch);
  /// CatchUp's per-environment body; caller holds catchup_mu_.
  Status CatchUpEnv(size_t index, const std::string& env_name);

  FleetProxyOptions options_;
  BackendPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;

  /// Serializes mutation relays against catch-up feeds: while one
  /// replica is being fed its missing suffix, no new mutation may land
  /// on the others, so "epochs match" at the end of CatchUp() really
  /// means caught up.
  std::mutex catchup_mu_;
  std::deque<RingEntry> mutation_ring_;  ///< guarded by catchup_mu_.
  /// Per-backend exclusion flags (fixed size; indexed like the pool).
  std::vector<std::atomic<bool>> excluded_;

  std::atomic<uint64_t> retry_seed_{0};

  std::atomic<uint64_t> connections_count_{0};
  std::atomic<uint64_t> queries_count_{0};
  std::atomic<uint64_t> ok_count_{0};
  std::atomic<uint64_t> rejected_count_{0};
  std::atomic<uint64_t> shed_count_{0};
  std::atomic<uint64_t> failed_count_{0};
  std::atomic<uint64_t> cancelled_count_{0};
  std::atomic<uint64_t> retries_count_{0};
  std::atomic<uint64_t> failovers_count_{0};
  std::atomic<uint64_t> backoffs_count_{0};
  std::atomic<uint64_t> stats_count_{0};
  std::atomic<uint64_t> mutations_count_{0};
  std::atomic<uint64_t> stats_backends_skipped_count_{0};
  std::atomic<uint64_t> metrics_count_{0};
  std::atomic<uint64_t> expired_count_{0};
  std::atomic<uint64_t> epoch_probes_count_{0};
  std::atomic<uint64_t> catchups_count_{0};
  std::atomic<uint64_t> catchup_failures_count_{0};
  std::atomic<uint64_t> excluded_skips_count_{0};
  std::atomic<uint64_t> relay_exclusions_count_{0};
};

}  // namespace fleet
}  // namespace rcj

#endif  // RINGJOIN_FLEET_FLEET_PROXY_H_
