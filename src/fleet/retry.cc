#include "fleet/retry.h"

#include <algorithm>

namespace rcj {
namespace fleet {
namespace {

/// splitmix64: tiny, uniform, and stable across platforms — the jitter
/// stream must be reproducible for the tests that pin exact delays.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t BackoffBaseMs(const RetryPolicy& policy, size_t cycle) {
  uint64_t delay = policy.base_backoff_ms;
  for (size_t i = 0; i < cycle; ++i) {
    if (delay >= policy.max_backoff_ms) break;
    delay *= 2;
  }
  return std::min(delay, policy.max_backoff_ms);
}

RetrySchedule::RetrySchedule(const RetryPolicy& policy)
    : policy_(policy), rng_state_(policy.seed) {
  if (policy_.max_attempts == 0) policy_.max_attempts = 1;
  policy_.jitter_fraction =
      std::min(1.0, std::max(0.0, policy_.jitter_fraction));
}

uint64_t RetrySchedule::NextDelayMs() {
  const uint64_t base = BackoffBaseMs(policy_, cycle_);
  ++cycle_;
  if (base == 0 || policy_.jitter_fraction == 0.0) return base;
  // Uniform draw from [base * (1 - jitter), base]: subtract a random
  // share of the jitter window so the full delay is the upper bound.
  const double window = static_cast<double>(base) * policy_.jitter_fraction;
  const double unit =
      static_cast<double>(NextRandom(&rng_state_) >> 11) *
      (1.0 / 9007199254740992.0);  // 53-bit mantissa → [0, 1)
  return base - static_cast<uint64_t>(window * unit);
}

}  // namespace fleet
}  // namespace rcj
