// Retry policy of the fleet tier: capped exponential backoff with
// deterministic jitter.
//
// The proxy retries a request when a backend refuses the connection,
// dies mid-stream, or sheds it with `ERR Overloaded`. Retries first walk
// the environment's replica set (an immediate failover costs nothing);
// only once a whole cycle of replicas has failed does the proxy sleep —
// an exponentially growing, capped, jittered delay, so a recovering
// fleet is not stampeded by synchronized retry waves (the jitter
// de-correlates clients that failed at the same instant).
//
// The schedule is a pure function of the policy's seed (splitmix64
// underneath), so tests assert exact delays and production gets
// per-request decorrelation by seeding from a per-request counter.
#ifndef RINGJOIN_FLEET_RETRY_H_
#define RINGJOIN_FLEET_RETRY_H_

#include <cstddef>
#include <cstdint>

namespace rcj {
namespace fleet {

struct RetryPolicy {
  /// Total backend attempts per request (first try included). 0 is
  /// normalized to 1 — the request is always tried at least once.
  size_t max_attempts = 6;
  /// Un-jittered delay after the first failed replica cycle; doubles per
  /// further cycle.
  uint64_t base_backoff_ms = 10;
  /// Cap on the un-jittered delay.
  uint64_t max_backoff_ms = 500;
  /// Jitter width: the actual delay is drawn uniformly from
  /// [delay * (1 - jitter_fraction), delay]. Clamped to [0, 1].
  double jitter_fraction = 0.5;
  /// Seed of the jitter stream; same seed, same schedule.
  uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/// The un-jittered backoff for zero-based failure cycle `cycle`:
/// min(max_backoff_ms, base_backoff_ms << cycle), overflow-safe.
uint64_t BackoffBaseMs(const RetryPolicy& policy, size_t cycle);

/// One request's retry schedule. Not thread-safe; one per request.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy);

  /// The jittered delay for the next failure cycle, advancing the
  /// schedule. Always within
  /// [base * (1 - jitter), base] of BackoffBaseMs(cycle).
  uint64_t NextDelayMs();

  /// Failure cycles consumed so far.
  size_t cycles() const { return cycle_; }

 private:
  RetryPolicy policy_;
  uint64_t rng_state_;
  size_t cycle_ = 0;
};

}  // namespace fleet
}  // namespace rcj

#endif  // RINGJOIN_FLEET_RETRY_H_
