#include "fleet/backend_pool.h"

#include <utility>

#include "net/protocol.h"

namespace rcj {
namespace fleet {

std::string BackendAddressToString(const BackendAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

Status ParseBackendAddress(const std::string& text, BackendAddress* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == text.size()) {
    return Status::InvalidArgument("backend '" + text +
                                   "' is not host:port");
  }
  uint64_t port = 0;
  Status status =
      net::ParseUint64Field("port", text.substr(colon + 1), &port);
  if (!status.ok()) return status;
  if (port == 0 || port > 65535) {
    return Status::OutOfRange("backend '" + text +
                              "' port is out of range");
  }
  out->host = text.substr(0, colon);
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

Status ParseBackendList(const std::string& text,
                        std::vector<BackendAddress>* out) {
  out->clear();
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    BackendAddress address;
    Status status =
        ParseBackendAddress(text.substr(start, comma - start), &address);
    if (!status.ok()) return status;
    out->push_back(std::move(address));
    start = comma + 1;
  }
  if (out->empty()) {
    return Status::InvalidArgument("backend list is empty");
  }
  return Status::OK();
}

BackendPool::BackendPool(std::vector<BackendAddress> backends,
                         BackendPoolOptions options)
    : options_(options) {
  entries_.reserve(backends.size());
  for (BackendAddress& address : backends) {
    Entry entry;
    entry.address = std::move(address);
    entries_.push_back(std::move(entry));
  }
}

BackendAddress BackendPool::address(size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_[index].address;
}

void BackendPool::SetAddress(size_t index, BackendAddress address) {
  std::vector<net::ProtocolClient> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_[index].address = std::move(address);
    dropped.swap(entries_[index].idle);  // close outside the lock
  }
}

Result<net::ProtocolClient> BackendPool::Dial(size_t index) {
  BackendAddress address;
  {
    std::lock_guard<std::mutex> lock(mu_);
    address = entries_[index].address;
  }
  Result<net::ProtocolClient> dialed =
      net::ProtocolClient::Connect(address.host, address.port);
  std::lock_guard<std::mutex> lock(mu_);
  if (dialed.ok()) {
    ++counters_.dials;
  } else {
    ++counters_.dial_failures;
  }
  return dialed;
}

Result<net::ProtocolClient> BackendPool::Acquire(size_t index,
                                                 bool* reused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry& entry = entries_[index];
    if (!entry.idle.empty()) {
      net::ProtocolClient client = std::move(entry.idle.back());
      entry.idle.pop_back();
      ++counters_.reuses;
      if (reused) *reused = true;
      return client;
    }
  }
  if (reused) *reused = false;
  return Dial(index);
}

void BackendPool::Release(size_t index, net::ProtocolClient client) {
  if (!client.connected()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[index];
  if (entry.idle.size() < options_.max_idle_per_backend) {
    entry.idle.push_back(std::move(client));
  }
  // else: `client` destructs (closes) as it leaves scope.
}

BackendPool::Counters BackendPool::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace fleet
}  // namespace rcj
