#include "fleet/fleet_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/stable_hash.h"
#include "net/line_reader.h"
#include "net/protocol.h"
#include "net/request_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rcj {
namespace fleet {
namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Registry mirrors of the proxy's outcome counters, plus the fleet-only
/// signals: responses actually read from backends (the counter the CI
/// smoke reconciles against the backends' admission ledgers), replayed
/// pairs skipped on failover, and the backoff-delay histogram.
struct ProxyMetrics {
  obs::Counter* connections;
  obs::Counter* queries;
  obs::Counter* ok;
  obs::Counter* rejected;
  obs::Counter* shed;
  obs::Counter* failed;
  obs::Counter* cancelled;
  obs::Counter* retries;
  obs::Counter* failovers;
  obs::Counter* backoffs;
  obs::Counter* stats;
  obs::Counter* mutations;
  obs::Counter* metrics_scrapes;
  obs::Counter* forwarded;
  obs::Counter* replay_skipped_pairs;
  obs::Counter* stats_backends_skipped;
  obs::Counter* expired;
  obs::Counter* epoch_probes;
  obs::Counter* catchups;
  obs::Counter* catchup_failures;
  obs::Counter* catchup_replayed;
  obs::Counter* excluded_skips;
  obs::Counter* relay_exclusions;
  obs::Histogram* backoff_seconds;

  static const ProxyMetrics& Get() {
    static const ProxyMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      ProxyMetrics m;
      m.connections = registry.counter("rcj_proxy_connections_total");
      m.queries = registry.counter("rcj_proxy_queries_total");
      m.ok = registry.counter("rcj_proxy_ok_total");
      m.rejected = registry.counter("rcj_proxy_rejected_total");
      m.shed = registry.counter("rcj_proxy_shed_total");
      m.failed = registry.counter("rcj_proxy_failed_total");
      m.cancelled = registry.counter("rcj_proxy_cancelled_total");
      m.retries = registry.counter("rcj_proxy_retries_total");
      m.failovers = registry.counter("rcj_proxy_failovers_total");
      m.backoffs = registry.counter("rcj_proxy_backoffs_total");
      m.stats = registry.counter("rcj_proxy_stats_total");
      m.mutations = registry.counter("rcj_proxy_mutations_total");
      m.metrics_scrapes = registry.counter("rcj_proxy_metrics_total");
      m.forwarded = registry.counter("rcj_proxy_forwarded_total");
      m.replay_skipped_pairs =
          registry.counter("rcj_proxy_replay_skipped_pairs_total");
      m.stats_backends_skipped =
          registry.counter("rcj_proxy_stats_backends_skipped_total");
      m.expired = registry.counter("rcj_proxy_expired_total");
      m.epoch_probes = registry.counter("rcj_proxy_epoch_probes_total");
      m.catchups = registry.counter("rcj_proxy_catchups_total");
      m.catchup_failures =
          registry.counter("rcj_proxy_catchup_failures_total");
      m.catchup_replayed =
          registry.counter("rcj_proxy_catchup_replayed_total");
      m.excluded_skips =
          registry.counter("rcj_proxy_excluded_skips_total");
      m.relay_exclusions =
          registry.counter("rcj_proxy_relay_exclusions_total");
      m.backoff_seconds = registry.histogram("rcj_proxy_backoff_seconds");
      return m;
    }();
    return metrics;
  }
};

/// Per-backend attempt counter (labeled metric name). Looked up per
/// attempt — attempts are connection-rate, not pair-rate, so the registry
/// mutex is fine here.
obs::Counter* BackendAttemptCounter(size_t backend) {
  return obs::MetricsRegistry::Default().counter(
      "rcj_proxy_backend_attempts_total{backend=\"" +
      std::to_string(backend) + "\"}");
}

/// Client-bound bytes are batched up to this size before hitting the
/// socket, amortizing syscalls across a pair stream while keeping the
/// relay incremental.
constexpr size_t kFlushThresholdBytes = 8192;

bool IsPairLine(const std::string& line) {
  return line.rfind("PAIR ", 0) == 0;
}

bool IsEndLine(const std::string& line) {
  return line.rfind("END ", 0) == 0;
}

}  // namespace

FleetProxy::FleetProxy(std::vector<BackendAddress> backends,
                       FleetProxyOptions options)
    : options_(std::move(options)),
      pool_(std::move(backends), options_.pool),
      excluded_(pool_.size()) {
  // vector<atomic> default-constructs its elements; make the initial
  // state explicit rather than relying on zero-initialization.
  for (std::atomic<bool>& flag : excluded_) {
    flag.store(false, std::memory_order_relaxed);
  }
}

FleetProxy::~FleetProxy() { Stop(); }

Status FleetProxy::Start() {
  if (pool_.size() == 0) {
    return Status::InvalidArgument("fleet proxy needs at least one backend");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError(Errno("socket"));
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status = Status::IoError(Errno("bind"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status status = Status::IoError(Errno("listen"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) != 0) {
    const Status status = Status::IoError(Errno("getsockname"));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  stop_.store(false, std::memory_order_relaxed);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void FleetProxy::Stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_all();
  accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;

  // Unblock every relay: shutting both sockets down makes any blocking
  // recv/send in the handler return immediately.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections = connections_;
  }
  for (const std::shared_ptr<Connection>& connection : connections) {
    std::lock_guard<std::mutex> lock(connection->mu);
    if (connection->client_fd >= 0) {
      shutdown(connection->client_fd, SHUT_RDWR);
    }
    if (connection->backend_fd >= 0) {
      shutdown(connection->backend_fd, SHUT_RDWR);
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    connections_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  started_ = false;
}

std::vector<size_t> FleetProxy::ReplicaSet(
    const std::string& env_name) const {
  const size_t backends = pool_.size();
  const size_t width =
      std::min(std::max<size_t>(1, options_.replicas), backends);
  const size_t primary =
      static_cast<size_t>(StableHash(env_name) % backends);
  std::vector<size_t> replicas;
  replicas.reserve(width);
  for (size_t i = 0; i < width; ++i) {
    replicas.push_back((primary + i) % backends);
  }
  return replicas;
}

FleetProxy::Counters FleetProxy::counters() const {
  Counters counters;
  counters.connections = connections_count_.load(std::memory_order_relaxed);
  counters.queries = queries_count_.load(std::memory_order_relaxed);
  counters.ok = ok_count_.load(std::memory_order_relaxed);
  counters.rejected = rejected_count_.load(std::memory_order_relaxed);
  counters.shed = shed_count_.load(std::memory_order_relaxed);
  counters.failed = failed_count_.load(std::memory_order_relaxed);
  counters.cancelled = cancelled_count_.load(std::memory_order_relaxed);
  counters.retries = retries_count_.load(std::memory_order_relaxed);
  counters.failovers = failovers_count_.load(std::memory_order_relaxed);
  counters.backoffs = backoffs_count_.load(std::memory_order_relaxed);
  counters.stats = stats_count_.load(std::memory_order_relaxed);
  counters.mutations = mutations_count_.load(std::memory_order_relaxed);
  counters.stats_backends_skipped =
      stats_backends_skipped_count_.load(std::memory_order_relaxed);
  counters.metrics = metrics_count_.load(std::memory_order_relaxed);
  counters.expired = expired_count_.load(std::memory_order_relaxed);
  counters.epoch_probes =
      epoch_probes_count_.load(std::memory_order_relaxed);
  counters.catchups = catchups_count_.load(std::memory_order_relaxed);
  counters.catchup_failures =
      catchup_failures_count_.load(std::memory_order_relaxed);
  counters.excluded_skips =
      excluded_skips_count_.load(std::memory_order_relaxed);
  counters.relay_exclusions =
      relay_exclusions_count_.load(std::memory_order_relaxed);
  return counters;
}

void FleetProxy::SetExcluded(size_t index, bool excluded) {
  if (index >= excluded_.size()) return;
  excluded_[index].store(excluded, std::memory_order_relaxed);
}

bool FleetProxy::excluded(size_t index) const {
  return index < excluded_.size() &&
         excluded_[index].load(std::memory_order_relaxed);
}

void FleetProxy::ReapFinishedConnections() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t i = 0;
    while (i < connections_.size()) {
      if (connections_[i]->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(threads_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
        threads_[i] = std::move(threads_.back());
        threads_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (std::thread& thread : finished) thread.join();
}

void FleetProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedConnections();
    bool saturated;
    {
      std::lock_guard<std::mutex> lock(mu_);
      saturated = connections_.size() >= options_.max_connections;
    }
    if (saturated) {
      poll(nullptr, 0, 20);
      continue;
    }
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().connections->Add();
    auto connection = std::make_shared<Connection>();
    connection->client_fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    connections_.push_back(connection);
    threads_.emplace_back(
        [this, connection] { HandleConnection(connection.get()); });
  }
}

void FleetProxy::SetBackendFd(Connection* connection, int fd) {
  std::lock_guard<std::mutex> lock(connection->mu);
  connection->backend_fd = fd;
}

bool FleetProxy::FlushToClient(Connection* connection, std::string* out) {
  if (out->empty()) return true;
  int fd;
  {
    std::lock_guard<std::mutex> lock(connection->mu);
    fd = connection->client_fd;
  }
  if (fd < 0) {
    out->clear();
    return false;
  }
  const bool sent = net::SendAll(fd, *out);
  out->clear();
  return sent;
}

void FleetProxy::Backoff(uint64_t ms) {
  backoffs_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().backoffs->Add();
  ProxyMetrics::Get().backoff_seconds->Observe(
      static_cast<double>(ms) / 1000.0);
  if (options_.sleep_fn) {
    options_.sleep_fn(ms);
    return;
  }
  std::unique_lock<std::mutex> lock(sleep_mu_);
  sleep_cv_.wait_for(lock, std::chrono::milliseconds(ms), [this] {
    return stop_.load(std::memory_order_relaxed);
  });
}

void FleetProxy::HandleConnection(Connection* connection) {
  const int fd = connection->client_fd;
  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms};
  std::string carry;
  std::string line;
  Status status =
      net::ReadRequestLine(fd, read_options, &stop_, &carry, &line);
  if (!status.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().rejected->Add();
    std::string err = net::FormatErrLine(status) + "\n";
    FlushToClient(connection, &err);
  } else if (net::IsStatsRequestLine(line)) {
    HandleStats(connection);
  } else if (net::IsMetricsRequestLine(line)) {
    HandleMetrics(connection);
  } else if (net::IsMutationRequestLine(line)) {
    HandleMutations(connection, std::move(line), &carry);
  } else {
    HandleQuery(connection, line);
  }

  {
    std::lock_guard<std::mutex> lock(connection->mu);
    close(fd);
    connection->client_fd = -1;
  }
  connection->done.store(true, std::memory_order_release);
}

void FleetProxy::HandleQuery(Connection* connection,
                             const std::string& line) {
  net::WireRequest request;
  Status parse = net::ParseRequestLine(line, &request);
  std::string out;
  if (!parse.ok()) {
    // Reject malformed requests at the edge — no backend ever sees them.
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().rejected->Add();
    out = net::FormatErrLine(parse) + "\n";
    FlushToClient(connection, &out);
    return;
  }
  queries_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().queries->Add();

  // The client's relative budget is anchored once, here: retries, dials,
  // and backoffs below all spend from this single deadline, and each
  // forwarded attempt carries only the budget still remaining.
  const bool has_deadline = request.deadline_ms != 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(request.deadline_ms);

  // A traced query is stitched: the proxy mints (or adopts) the trace id
  // and forwards it on the backend's QUERY line, so the backend's TRACE
  // lines carry the same id and can be relayed verbatim; the proxy's own
  // proxy.* spans join them under one combined ENDTRACE.
  std::unique_ptr<obs::TraceContext> trace;
  std::string forward_line = line;
  if (request.trace) {
    trace = std::make_unique<obs::TraceContext>(request.trace_id);
    if (request.trace_id.empty()) {
      forward_line += " trace_id=" + trace->id();
      // Keep the parsed request in sync: deadline-bearing attempts are
      // re-serialized from it below and must carry the same id.
      request.trace_id = trace->id();
    }
  }

  const std::vector<size_t> replicas = ReplicaSet(request.env_name);
  RetryPolicy policy = options_.retry;
  if (policy.max_attempts == 0) policy.max_attempts = 1;
  // De-correlate concurrent requests' jitter streams; request 0 keeps the
  // configured seed so tests can pin the schedule.
  policy.seed += retry_seed_.fetch_add(1, std::memory_order_relaxed) *
                 0x9e3779b97f4a7c15ull;
  RetrySchedule schedule(policy);

  bool ok_sent = false;
  // FNV hashes of every PAIR line already relayed to the client: the
  // replay-skip ledger. A failover re-runs the (deterministic) query on
  // the next replica and verifies-then-skips this prefix, so the client
  // stream carries no duplicated and no corrupted pairs.
  std::vector<uint64_t> forwarded;
  uint64_t replay_skipped = 0;
  Status last_error = Status::IoError("no backend attempt was made");

  // Feed the process-wide slow-query log on every exit path. The proxy's
  // wall time includes dials, retries, and backoff — exactly what a slow
  // fleet query looks like from the client's side.
  struct SlowLogGuard {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    const std::vector<uint64_t>* relayed = nullptr;
    const obs::TraceContext* trace = nullptr;
    std::string env;
    ~SlowLogGuard() {
      obs::SlowQueryLog* log = obs::MetricsRegistry::Default().slow_log();
      if (!log->enabled()) return;
      obs::SlowQueryEntry entry;
      entry.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      entry.pairs = relayed->size();
      entry.env = env;
      if (trace != nullptr) entry.trace_id = trace->id();
      entry.detail = "proxy";
      log->MaybeRecord(entry);
    }
  };
  SlowLogGuard slow_guard;
  slow_guard.relayed = &forwarded;
  slow_guard.trace = trace.get();
  slow_guard.env = request.env_name;

  for (size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (stop_.load(std::memory_order_relaxed)) break;
    if (has_deadline &&
        std::chrono::steady_clock::now() >= deadline) {
      last_error = Status::DeadlineExceeded(
          "deadline expired after " + std::to_string(attempt) +
          " backend attempts");
      break;
    }
    if (attempt > 0 && attempt % replicas.size() == 0) {
      // A whole replica cycle failed: back off before going around again
      // — but never sleep past the client's deadline; the budget is
      // better spent reporting DeadlineExceeded promptly.
      uint64_t delay_ms = schedule.NextDelayMs();
      if (has_deadline) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now())
                .count();
        delay_ms = std::min<uint64_t>(
            delay_ms,
            remaining > 0 ? static_cast<uint64_t>(remaining) : 0);
      }
      const auto backoff_start = obs::TraceClock::now();
      Backoff(delay_ms);
      if (trace != nullptr) {
        trace->Record("proxy.backoff", 1, backoff_start,
                      obs::TraceClock::now());
      }
      if (stop_.load(std::memory_order_relaxed)) break;
    }
    if (attempt > 0) {
      retries_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().retries->Add();
    }
    const size_t backend = replicas[attempt % replicas.size()];
    if (excluded_[backend].load(std::memory_order_relaxed)) {
      // The replica is respawning / catching up: it is not allowed to
      // serve reads until its epochs match the primary's again.
      excluded_skips_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().excluded_skips->Add();
      last_error = Status::IoError(
          "backend " + std::to_string(backend) +
          " is excluded pending catch-up");
      continue;
    }
    const std::string backend_name =
        BackendAddressToString(pool_.address(backend));

    // Deadline-bearing attempts re-serialize the request so the backend
    // sees only the *remaining* budget — its own admission and engine
    // checks then enforce the same end-to-end deadline.
    std::string attempt_line = forward_line;
    if (has_deadline) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      request.deadline_ms =
          remaining > 0 ? static_cast<uint64_t>(remaining) : 1;
      attempt_line = net::FormatRequestLine(request);
    }

    BackendAttemptCounter(backend)->Add();
    const Status dial_fp = RINGJOIN_FAILPOINT("backend_dial");
    if (!dial_fp.ok()) {
      last_error = dial_fp;
      continue;
    }
    const auto dial_start = obs::TraceClock::now();
    Result<net::ProtocolClient> dialed = pool_.Dial(backend);
    if (trace != nullptr) {
      trace->Record("proxy.dial", 1, dial_start, obs::TraceClock::now());
    }
    if (!dialed.ok()) {
      last_error = dialed.status();
      continue;
    }
    net::ProtocolClient conn = std::move(dialed).value();
    SetBackendFd(connection, conn.fd());
    const bool resuming = ok_sent;

    std::string resp;
    if (!conn.SendLine(attempt_line) || !conn.ReadLine(&resp)) {
      SetBackendFd(connection, -1);
      last_error = Status::IoError("backend " + backend_name +
                                   " closed before a response");
      continue;
    }
    // A response line was read: the backend processed the request (and,
    // for well-formed queries, ran it through admission) — the counter
    // the fleet smoke reconciles against backend ledgers.
    ProxyMetrics::Get().forwarded->Add();
    if (resp != "OK") {
      SetBackendFd(connection, -1);
      Status transported = Status::Corruption(
          "backend " + backend_name + " sent '" + resp + "' before OK");
      net::ParseErrLine(resp, &transported);
      if (transported.code() == StatusCode::kOverloaded) {
        // The shed happened before the query started; retrying is safe.
        last_error = transported;
        continue;
      }
      if (transported.code() == StatusCode::kDeadlineExceeded) {
        // The backend shed the query because the (forwarded, remaining)
        // budget ran out — another replica would expire the same way, so
        // this is final, not a failover.
        expired_count_.fetch_add(1, std::memory_order_relaxed);
        ProxyMetrics::Get().expired->Add();
        out.append(resp).push_back('\n');
        FlushToClient(connection, &out);
        return;
      }
      // A definitive rejection (unknown env, bad spec the proxy's laxer
      // knowledge let through): relay verbatim, conversation over.
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().rejected->Add();
      out.append(resp).push_back('\n');
      FlushToClient(connection, &out);
      return;
    }
    if (!ok_sent) {
      ok_sent = true;
      out.append("OK\n");
      if (!FlushToClient(connection, &out)) {
        cancelled_count_.fetch_add(1, std::memory_order_relaxed);
        ProxyMetrics::Get().cancelled->Add();
        SetBackendFd(connection, -1);
        return;
      }
    }
    if (resuming) {
      failovers_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().failovers->Add();
    }

    uint64_t seen = 0;  // pairs observed from THIS backend's stream
    bool stream_lost = false;
    for (;;) {
      const Status relay_fp = RINGJOIN_FAILPOINT("relay_midstream");
      if (!relay_fp.ok()) {
        // Chaos seam: drop the backend conversation mid-stream, exactly
        // like a relay whose peer died — exercising the failover replay.
        last_error = relay_fp;
        stream_lost = true;
        break;
      }
      if (!conn.ReadLine(&resp)) {
        last_error = Status::IoError(
            "backend " + backend_name + " lost mid-stream after " +
            std::to_string(seen) + " pairs");
        stream_lost = true;
        break;
      }
      if (IsPairLine(resp)) {
        const uint64_t hash = StableHash(resp);
        if (seen < forwarded.size()) {
          if (forwarded[seen] != hash) {
            // The replica's deterministic stream does not match what was
            // already relayed — splicing would corrupt the client stream.
            failed_count_.fetch_add(1, std::memory_order_relaxed);
            ProxyMetrics::Get().failed->Add();
            out = net::FormatErrLine(Status::Corruption(
                      "replica streams diverged at pair " +
                      std::to_string(seen))) +
                  "\n";
            FlushToClient(connection, &out);
            SetBackendFd(connection, -1);
            return;
          }
          ++seen;  // verified: already relayed, skip
          ++replay_skipped;
          continue;
        }
        forwarded.push_back(hash);
        ++seen;
        out.append(resp).push_back('\n');
        if (out.size() >= kFlushThresholdBytes &&
            !FlushToClient(connection, &out)) {
          cancelled_count_.fetch_add(1, std::memory_order_relaxed);
          ProxyMetrics::Get().cancelled->Add();
          SetBackendFd(connection, -1);
          return;
        }
        continue;
      }
      if (IsEndLine(resp) && seen < forwarded.size()) {
        // The replica finished short of the already-relayed prefix:
        // divergence again, not a relayable END.
        failed_count_.fetch_add(1, std::memory_order_relaxed);
        ProxyMetrics::Get().failed->Add();
        out = net::FormatErrLine(Status::Corruption(
                  "replica stream ended at pair " + std::to_string(seen) +
                  " short of the " + std::to_string(forwarded.size()) +
                  " already relayed")) +
              "\n";
        FlushToClient(connection, &out);
        SetBackendFd(connection, -1);
        return;
      }
      // END or a post-OK ERR epilogue: relay verbatim, conversation over.
      const bool is_end = IsEndLine(resp);
      out.append(resp).push_back('\n');
      if (is_end && replay_skipped > 0) {
        ProxyMetrics::Get().replay_skipped_pairs->Add(replay_skipped);
      }
      if (is_end && trace != nullptr) {
        if (replay_skipped > 0) {
          trace->RecordSeconds("proxy.replay_skip", 1, 0.0, replay_skipped);
        }
        // Relay the backend's TRACE lines verbatim (same trace id, so the
        // fleet trace stitches), swallow the backend's ENDTRACE, append the
        // proxy's own spans, and emit one combined ENDTRACE.
        uint64_t relayed_spans = 0;
        std::string trace_line;
        while (conn.ReadLine(&trace_line)) {
          if (net::IsTraceEndLine(trace_line)) break;
          if (!net::IsTraceLine(trace_line)) continue;  // defensive
          out.append(trace_line).push_back('\n');
          ++relayed_spans;
        }
        trace->Record("proxy", 0, trace->start_time(), obs::TraceClock::now());
        const std::vector<obs::TraceSpan> spans = trace->Spans();
        for (const obs::TraceSpan& span : spans) {
          net::WireTraceSpan wire;
          wire.id = trace->id();
          wire.depth = static_cast<uint64_t>(span.depth);
          wire.span = span.name;
          wire.count = span.count;
          wire.total_s = span.total_seconds;
          wire.start_s = span.start_seconds;
          out.append(net::FormatTraceLine(wire)).push_back('\n');
        }
        out.append(
               net::FormatTraceEndLine(trace->id(), relayed_spans + spans.size()))
            .push_back('\n');
      }
      if (FlushToClient(connection, &out)) {
        if (is_end) {
          ok_count_.fetch_add(1, std::memory_order_relaxed);
          ProxyMetrics::Get().ok->Add();
        } else {
          failed_count_.fetch_add(1, std::memory_order_relaxed);
          ProxyMetrics::Get().failed->Add();
        }
      } else {
        cancelled_count_.fetch_add(1, std::memory_order_relaxed);
        ProxyMetrics::Get().cancelled->Add();
      }
      SetBackendFd(connection, -1);
      return;
    }
    SetBackendFd(connection, -1);
    if (!stream_lost) return;  // unreachable today; defensive
  }

  // Retry budget exhausted (or shutdown): report the last failure. The
  // ERR frame is legal both before OK (rejection) and after (epilogue).
  if (has_deadline && last_error.code() != StatusCode::kDeadlineExceeded &&
      std::chrono::steady_clock::now() >= deadline) {
    // The policy's attempts ran out and so did the clock; the deadline is
    // the truer story for a budgeted caller.
    last_error = Status::DeadlineExceeded(
        "deadline expired during retries; last failure: " +
        last_error.message());
  }
  if (last_error.code() == StatusCode::kOverloaded) {
    shed_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().shed->Add();
  } else if (last_error.code() == StatusCode::kDeadlineExceeded) {
    expired_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().expired->Add();
  } else {
    failed_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().failed->Add();
  }
  out.append(net::FormatErrLine(last_error)).push_back('\n');
  FlushToClient(connection, &out);
}

void FleetProxy::HandleStats(Connection* connection) {
  // Fan out to every backend; renumber each backend's shard indices by
  // the running total so the fleet view is one flat shard space, and sum
  // the ENDSTATS totals. Per-backend ledgers each satisfy
  // admitted + shed == submitted, so their concatenation reconciles
  // exactly — no proxy-side bookkeeping is needed for the global count.
  std::string shard_rows;
  std::string env_rows;
  uint64_t total_shards = 0;
  uint64_t total_envs = 0;
  for (size_t index = 0; index < pool_.size(); ++index) {
    if (stop_.load(std::memory_order_relaxed)) break;
    Result<net::ProtocolClient> dialed = pool_.Dial(index);
    if (!dialed.ok()) {
      stats_backends_skipped_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().stats_backends_skipped->Add();
      continue;
    }
    net::ProtocolClient conn = std::move(dialed).value();
    SetBackendFd(connection, conn.fd());
    std::vector<net::WireShardStats> shards;
    std::vector<net::WireEnvStats> envs;
    const Status status = conn.Stats(&shards, &envs);
    SetBackendFd(connection, -1);
    if (!status.ok()) {
      stats_backends_skipped_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().stats_backends_skipped->Add();
      continue;
    }
    for (net::WireShardStats& shard : shards) {
      shard.shard += total_shards;
      shard_rows.append(net::FormatShardStatsLine(shard)).push_back('\n');
    }
    for (net::WireEnvStats& env : envs) {
      env.shard += total_shards;
      env_rows.append(net::FormatEnvStatsLine(env)).push_back('\n');
    }
    total_shards += shards.size();
    total_envs += envs.size();
  }
  stats_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().stats->Add();
  std::string out = "OK\n";
  out += shard_rows;
  out += env_rows;
  out += net::FormatStatsEndLine(total_shards, total_envs) + "\n";
  FlushToClient(connection, &out);
}

void FleetProxy::HandleMetrics(Connection* connection) {
  metrics_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().metrics_scrapes->Add();
  // The proxy's registry only — a fleet operator scrapes backends
  // directly (their ports are in the supervisor's log). The exposition is
  // newline-terminated per line, so the line count is the '\n' count.
  const std::string exposition =
      obs::MetricsRegistry::Default().RenderPrometheus();
  uint64_t lines = 0;
  for (const char c : exposition) {
    if (c == '\n') ++lines;
  }
  std::string out = "OK\n";
  out += exposition;
  out += net::FormatMetricsEndLine(lines) + "\n";
  FlushToClient(connection, &out);
}

bool FleetProxy::RelayMutation(
    Connection* connection, const std::string& line,
    std::vector<std::unique_ptr<net::ProtocolClient>>* held,
    std::string* reply) {
  net::WireMutation mutation;
  Status parse = net::ParseMutationLine(line, &mutation);
  if (!parse.ok()) {
    rejected_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().rejected->Add();
    *reply = net::FormatErrLine(parse) + "\n";
    return false;
  }
  // Mutations go to the environment's whole replica window, not just the
  // primary — every backend that may serve a read of this environment
  // must converge. A replica that cannot take the op is not allowed to
  // fail it for everyone: it is *excluded* from the read window on the
  // spot, the op lands on the ring below, and CatchUp() replays the
  // suffix before the replica may serve reads again — so a mid-batch
  // kill degrades to one replica catching up, never to forked histories
  // a client can observe. (Whether the failed replica actually applied
  // the op before dying is ambiguous here; the EPOCH probe at catch-up
  // time resolves it exactly, because the replayed suffix starts at the
  // replica's own recovered epoch.) Only when *no* replica acknowledges
  // does the op fail.
  //
  // The catch-up lock spans the fan-out AND the ring append: a CatchUp()
  // running concurrently would otherwise miss exactly this mutation.
  std::lock_guard<std::mutex> catchup_lock(catchup_mu_);
  const std::vector<size_t> replicas = ReplicaSet(mutation.env_name);
  net::WireMutationAck primary_ack;
  bool have_ack = false;
  Status last_error;
  for (size_t i = 0; i < replicas.size(); ++i) {
    const size_t index = replicas[i];
    if (excluded_[index].load(std::memory_order_relaxed)) {
      excluded_skips_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().excluded_skips->Add();
      continue;
    }
    std::unique_ptr<net::ProtocolClient>& slot = (*held)[index];
    net::WireMutationAck ack;
    Status op_status;
    for (int attempt = 0; attempt < 2; ++attempt) {
      // A conversation that sat idle (parked in the pool, or held since
      // an earlier op of this batch) may have been timed out by the
      // backend; such a failure earns one fresh redial. A fresh dial's
      // failure — and any backend ERR — is final: after the request hit
      // the wire a non-idempotent op must not be replayed blindly.
      bool stale_candidate = slot != nullptr;
      if (!slot) {
        bool reused = false;
        Result<net::ProtocolClient> dialed = pool_.Acquire(index, &reused);
        if (!dialed.ok()) {
          op_status = dialed.status();
          break;
        }
        slot = std::make_unique<net::ProtocolClient>(
            std::move(dialed).value());
        stale_candidate = reused;
      }
      SetBackendFd(connection, slot->fd());
      op_status = slot->Mutate(mutation, &ack);
      SetBackendFd(connection, -1);
      if (op_status.ok()) break;
      slot.reset();  // the conversation is dead either way
      if (!stale_candidate ||
          op_status.code() != StatusCode::kIoError) {
        break;
      }
    }
    if (op_status.ok()) {
      if (!have_ack) {
        primary_ack = ack;
        have_ack = true;
      }
      continue;
    }
    if (op_status.code() != StatusCode::kIoError) {
      // A *logical* rejection (InvalidArgument, NotFound...) comes from a
      // healthy backend refusing the op; converged replicas refuse
      // deterministically, so relay the first refusal and exclude no one.
      failed_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().failed->Add();
      *reply = net::FormatErrLine(op_status) + "\n";
      return false;
    }
    // Transport failure: the replica is unreachable (or died mid-op).
    // Exclude it from the read window right now — before the supervisor
    // even notices the death — and keep going; CatchUp() reconciles it.
    excluded_[index].store(true, std::memory_order_relaxed);
    relay_exclusions_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().relay_exclusions->Add();
    last_error = op_status;
  }
  if (!have_ack) {
    Status failure = last_error.ok()
                         ? Status::IoError("every replica of '" +
                                           mutation.env_name +
                                           "' is excluded pending catch-up")
                         : last_error;
    failed_count_.fetch_add(1, std::memory_order_relaxed);
    ProxyMetrics::Get().failed->Add();
    *reply = net::FormatErrLine(failure) + "\n";
    return false;
  }
  // Remember the acknowledged mutation for catch-up. COMPACT stays off
  // the ring: it does not advance the epoch, and a caught-up replica may
  // compact on its own schedule.
  if (mutation.op != net::WireMutationOp::kCompact) {
    RingEntry entry;
    entry.epoch = primary_ack.epoch;
    entry.env_name = mutation.env_name;
    entry.line = line;
    mutation_ring_.push_back(std::move(entry));
    while (mutation_ring_.size() > options_.mutation_ring_capacity &&
           !mutation_ring_.empty()) {
      mutation_ring_.pop_front();
    }
  }
  mutations_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().mutations->Add();
  *reply = "OK\n" + net::FormatMutationAckLine(primary_ack) + "\n";
  return true;
}

Status FleetProxy::ProbeEpoch(size_t index, const std::string& env_name,
                              uint64_t* epoch) {
  epoch_probes_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().epoch_probes->Add();
  Result<net::ProtocolClient> dialed = pool_.Dial(index);
  if (!dialed.ok()) return dialed.status();
  net::ProtocolClient conn = std::move(dialed).value();
  std::string resp;
  if (!conn.SendLine(net::FormatEpochRequestLine(env_name)) ||
      !conn.ReadLine(&resp)) {
    return Status::IoError("backend " + std::to_string(index) +
                           " closed during an epoch probe");
  }
  if (resp != "OK") {
    Status transported = Status::Corruption(
        "backend " + std::to_string(index) + " sent '" + resp +
        "' to an epoch probe");
    net::ParseErrLine(resp, &transported);
    return transported;
  }
  if (!conn.ReadLine(&resp)) {
    return Status::IoError("backend " + std::to_string(index) +
                           " closed before its epoch row");
  }
  std::string got_env;
  RINGJOIN_RETURN_IF_ERROR(
      net::ParseEpochResponseLine(resp, &got_env, epoch));
  if (got_env != env_name) {
    return Status::Corruption("epoch probe for '" + env_name +
                              "' answered for '" + got_env + "'");
  }
  return Status::OK();
}

Status FleetProxy::CatchUpEnv(size_t index, const std::string& env_name) {
  // The target is the primary's epoch: the first healthy replica of the
  // window that is not the one catching up. A lone replica has no peer
  // to trail behind.
  const std::vector<size_t> replicas = ReplicaSet(env_name);
  size_t primary = pool_.size();
  for (const size_t replica : replicas) {
    if (replica != index &&
        !excluded_[replica].load(std::memory_order_relaxed)) {
      primary = replica;
      break;
    }
  }
  if (primary == pool_.size()) return Status::OK();
  uint64_t target = 0;
  RINGJOIN_RETURN_IF_ERROR(ProbeEpoch(primary, env_name, &target));
  uint64_t have = 0;
  RINGJOIN_RETURN_IF_ERROR(ProbeEpoch(index, env_name, &have));
  if (have >= target) return Status::OK();

  // The missing suffix must be fully covered by the ring: contiguous
  // from the replica's next epoch up to the primary's. A gap means the
  // ring already evicted history this replica needs.
  std::vector<const RingEntry*> suffix;
  for (const RingEntry& entry : mutation_ring_) {
    if (entry.env_name == env_name && entry.epoch > have &&
        entry.epoch <= target) {
      suffix.push_back(&entry);
    }
  }
  if (suffix.empty() || suffix.front()->epoch != have + 1 ||
      suffix.back()->epoch != target ||
      suffix.back()->epoch - suffix.front()->epoch + 1 != suffix.size()) {
    return Status::IoError(
        "mutation ring no longer covers epochs " + std::to_string(have + 1) +
        ".." + std::to_string(target) + " of '" + env_name +
        "'; the replica needs a full restore");
  }

  Result<net::ProtocolClient> dialed = pool_.Dial(index);
  if (!dialed.ok()) return dialed.status();
  net::ProtocolClient conn = std::move(dialed).value();
  for (const RingEntry* entry : suffix) {
    net::WireMutation mutation;
    RINGJOIN_RETURN_IF_ERROR(net::ParseMutationLine(entry->line, &mutation));
    net::WireMutationAck ack;
    RINGJOIN_RETURN_IF_ERROR(conn.Mutate(mutation, &ack));
    ProxyMetrics::Get().catchup_replayed->Add();
    if (ack.epoch != entry->epoch) {
      return Status::Corruption(
          "catch-up replay of '" + env_name + "' landed at epoch " +
          std::to_string(ack.epoch) + ", expected " +
          std::to_string(entry->epoch) +
          " — the replica's history diverged");
    }
  }

  // Close the handshake: the replica must now agree with the primary.
  RINGJOIN_RETURN_IF_ERROR(ProbeEpoch(index, env_name, &have));
  if (have != target) {
    return Status::Corruption(
        "after catch-up, '" + env_name + "' on backend " +
        std::to_string(index) + " is at epoch " + std::to_string(have) +
        ", primary at " + std::to_string(target));
  }
  return Status::OK();
}

Status FleetProxy::CatchUp(size_t index) {
  if (index >= pool_.size()) {
    return Status::InvalidArgument("no backend " + std::to_string(index));
  }
  // No mutation may land while the suffix is being fed, or "epochs
  // match" below would be stale the moment it was measured.
  std::lock_guard<std::mutex> lock(catchup_mu_);
  std::vector<std::string> envs;
  for (const RingEntry& entry : mutation_ring_) {
    if (std::find(envs.begin(), envs.end(), entry.env_name) != envs.end()) {
      continue;
    }
    const std::vector<size_t> replicas = ReplicaSet(entry.env_name);
    if (std::find(replicas.begin(), replicas.end(), index) !=
        replicas.end()) {
      envs.push_back(entry.env_name);
    }
  }
  for (const std::string& env_name : envs) {
    const Status status = CatchUpEnv(index, env_name);
    if (!status.ok()) {
      catchup_failures_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().catchup_failures->Add();
      return status;
    }
  }
  excluded_[index].store(false, std::memory_order_relaxed);
  catchups_count_.fetch_add(1, std::memory_order_relaxed);
  ProxyMetrics::Get().catchups->Add();
  return Status::OK();
}

void FleetProxy::HandleMutations(Connection* connection, std::string line,
                                 std::string* carry) {
  const net::RequestReadOptions read_options{options_.max_request_bytes,
                                             options_.request_timeout_ms};
  std::vector<std::unique_ptr<net::ProtocolClient>> held(pool_.size());
  for (;;) {
    std::string reply;
    const bool applied = RelayMutation(connection, line, &held, &reply);
    const bool delivered = FlushToClient(connection, &reply);
    if (!applied || !delivered) break;
    bool clean_eof = false;
    const Status status =
        net::ReadRequestLine(connection->client_fd, read_options, &stop_,
                             carry, &line, &clean_eof);
    if (!status.ok()) {
      if (!clean_eof && !line.empty()) {
        rejected_count_.fetch_add(1, std::memory_order_relaxed);
        ProxyMetrics::Get().rejected->Add();
        std::string err = net::FormatErrLine(status) + "\n";
        FlushToClient(connection, &err);
      }
      break;
    }
    if (!net::IsMutationRequestLine(line)) {
      rejected_count_.fetch_add(1, std::memory_order_relaxed);
      ProxyMetrics::Get().rejected->Add();
      std::string err =
          net::FormatErrLine(Status::InvalidArgument(
              "only mutation requests may follow a mutation on one "
              "connection")) +
          "\n";
      FlushToClient(connection, &err);
      break;
    }
  }
  // Park the still-healthy conversations for the next batch.
  for (size_t index = 0; index < held.size(); ++index) {
    if (held[index]) pool_.Release(index, std::move(*held[index]));
  }
}

}  // namespace fleet
}  // namespace rcj
