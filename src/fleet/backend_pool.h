// BackendPool — the fleet proxy's view of its backends: addresses (which
// the supervisor may rewrite when it respawns a dead backend onto a new
// ephemeral port) plus a small per-backend pool of idle protocol
// connections.
//
// Pooling matters on the mutation path: a batched mutation conversation
// keeps its connection open between ops (the server only closes after an
// error), so the proxy parks the still-healthy connection here and the
// next mutation for the same backend skips the dial. Query and STATS
// conversations are consumed by the server (it closes after END /
// ENDSTATS), so those always dial — the pool simply reports the dials in
// its counters so benches can see the difference.
#ifndef RINGJOIN_FLEET_BACKEND_POOL_H_
#define RINGJOIN_FLEET_BACKEND_POOL_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/protocol_client.h"

namespace rcj {
namespace fleet {

/// One backend's dialing address.
struct BackendAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Formats "host:port" for logs and errors.
std::string BackendAddressToString(const BackendAddress& address);

/// Parses "host:port" (strict: numeric port in range). Used by
/// `rcj_tool proxy --backends`.
Status ParseBackendAddress(const std::string& text, BackendAddress* out);

/// Parses a comma-separated backend list ("h1:p1,h2:p2,...").
Status ParseBackendList(const std::string& text,
                        std::vector<BackendAddress>* out);

struct BackendPoolOptions {
  /// Idle connections parked per backend; further releases are closed.
  size_t max_idle_per_backend = 8;
};

class BackendPool {
 public:
  explicit BackendPool(std::vector<BackendAddress> backends,
                       BackendPoolOptions options = BackendPoolOptions());

  size_t size() const { return entries_.size(); }

  BackendAddress address(size_t index) const;

  /// Rewrites one backend's address (a respawned backend lands on a new
  /// ephemeral port) and drops its idle connections — they point at the
  /// dead process.
  void SetAddress(size_t index, BackendAddress address);

  /// Always dials a fresh connection. Queries and STATS use this: a
  /// parked conversation already carried a mutation, and the server only
  /// accepts further mutations on such a connection.
  Result<net::ProtocolClient> Dial(size_t index);

  /// Hands out a *mutation* conversation to backend `index`: an idle
  /// pooled one when available, else a fresh dial. `reused` (when
  /// non-null) reports which, so callers can retry a stale pooled
  /// connection with a fresh dial.
  Result<net::ProtocolClient> Acquire(size_t index, bool* reused = nullptr);

  /// Parks a still-connected conversation for reuse. Connections the
  /// server consumed (queries, STATS) or that errored must simply be
  /// dropped instead.
  void Release(size_t index, net::ProtocolClient client);

  struct Counters {
    uint64_t dials = 0;          ///< fresh connections established.
    uint64_t dial_failures = 0;  ///< connect attempts that failed.
    uint64_t reuses = 0;         ///< acquisitions served from the pool.
  };
  Counters counters() const;

 private:
  struct Entry {
    BackendAddress address;
    std::vector<net::ProtocolClient> idle;
  };

  BackendPoolOptions options_;
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  Counters counters_;
};

}  // namespace fleet
}  // namespace rcj

#endif  // RINGJOIN_FLEET_BACKEND_POOL_H_
