// FleetSupervisor — spawns and babysits N local backend serve processes
// for `rcj_tool fleet` (the dev/CI topology: one machine, one proxy, N
// backends on ephemeral ports).
//
// Each backend is fork/exec'd as `<argv0> serve <serve_args...> --port 0`
// with stdout+stderr redirected to `<log_dir>/backend-<i>.log`; the
// supervisor tails the log for the server's `listening on host:port`
// line to learn the ephemeral port. Redirecting to a file (rather than a
// pipe) kills two birds: the parent never has to drain a pipe to keep
// the child from blocking, and the per-backend logs are exactly what the
// CI smoke uploads as artifacts on failure.
//
// Supervise() reaps dead children (waitpid WNOHANG) and respawns them;
// the respawn callback hands the new address to the proxy
// (FleetProxy::SetBackendAddress), which drops any pooled connections to
// the dead process. A respawned backend re-registers its environments
// from the same command line; when the fleet runs with per-backend WAL
// dirs (per_backend_args carrying --wal-dir), the new process replays
// its own journal and the proxy's catch-up protocol
// (FleetProxy::CatchUp) feeds it the mutations relayed while it was
// down, so no acknowledged write is lost across a kill -9.
#ifndef RINGJOIN_FLEET_FLEET_SUPERVISOR_H_
#define RINGJOIN_FLEET_FLEET_SUPERVISOR_H_

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "fleet/backend_pool.h"

namespace rcj {
namespace fleet {

struct FleetSupervisorOptions {
  /// The rcj_tool binary to exec (usually /proc/self/exe).
  std::string argv0;
  /// Arguments after "serve" shared by every backend (--q/--p/--envs...).
  /// The supervisor appends `--port 0` itself.
  std::vector<std::string> serve_args;
  /// Extra per-backend arguments appended after `serve_args` — the slot
  /// for state each backend must own alone, like its `--wal-dir`.
  /// Indexed by backend; backends past the vector's end get no extras.
  /// A respawn reuses the same extras, which is what lets the new
  /// process find its predecessor's journal.
  std::vector<std::vector<std::string>> per_backend_args;
  /// Number of backend processes.
  size_t backends = 2;
  /// Directory for per-backend logs; created if missing.
  std::string log_dir = "fleet-logs";
  /// How long to wait for a backend's `listening on` line.
  int startup_timeout_ms = 15000;
  /// Respawn dead backends in Supervise().
  bool respawn = true;
};

class FleetSupervisor {
 public:
  explicit FleetSupervisor(FleetSupervisorOptions options);
  ~FleetSupervisor();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(FleetSupervisor);

  /// Spawns every backend and waits for each to report its port.
  Status Start();

  /// SIGTERMs and reaps every live backend. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// The backends' dialing addresses, in index order; valid after
  /// Start() (and updated by Supervise() respawns).
  std::vector<BackendAddress> addresses() const;

  BackendAddress address(size_t index) const { return backends_[index].address; }
  pid_t pid(size_t index) const { return backends_[index].pid; }

  /// One supervision pass: reaps exited backends and (when configured)
  /// respawns them, reporting each respawn's index and new address via
  /// `on_respawn` (may be null). Returns the number of deaths observed.
  /// Call periodically from the serving loop.
  size_t Supervise(
      const std::function<void(size_t index, const BackendAddress& address)>&
          on_respawn);

 private:
  struct Backend {
    pid_t pid = -1;
    BackendAddress address;
    std::string log_path;
    /// Byte offset into the log already scanned for `listening on`
    /// lines; a respawned backend appends to the same log, and its new
    /// port line is found past this offset.
    size_t log_scanned = 0;
  };

  /// Forks and execs backend `index`, then tails its log for the
  /// listening line to fill in the address.
  Status Spawn(size_t index);

  FleetSupervisorOptions options_;
  std::vector<Backend> backends_;
  bool started_ = false;
};

}  // namespace fleet
}  // namespace rcj

#endif  // RINGJOIN_FLEET_FLEET_SUPERVISOR_H_
