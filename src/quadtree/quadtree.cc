#include "quadtree/quadtree.h"

#include <cassert>
#include <cstring>

namespace rcj {
namespace {

constexpr uint32_t kHeaderBytes = 8;
constexpr uint32_t kLeafEntryBytes = 24;
constexpr uint16_t kKindLeaf = 0;
constexpr uint16_t kKindInternal = 1;

template <typename T>
T LoadScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <typename T>
void StoreScalar(uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

}  // namespace

Rect QuadNode::ChildRegion(const Rect& region, int quadrant) {
  const Point center = region.Center();
  Rect out = region;
  if (quadrant & 1) {
    out.lo.x = center.x;
  } else {
    out.hi.x = center.x;
  }
  if (quadrant & 2) {
    out.lo.y = center.y;
  } else {
    out.hi.y = center.y;
  }
  return out;
}

QuadTree::QuadTree(PageStore* store, BufferManager* buffer,
                   const Rect& domain, QuadTreeOptions options)
    : store_(store),
      buffer_(buffer),
      store_id_(buffer->RegisterStore(store)),
      domain_(domain),
      options_(options),
      leaf_capacity_((store->page_size() - kHeaderBytes) / kLeafEntryBytes) {}

Result<std::unique_ptr<QuadTree>> QuadTree::Create(PageStore* store,
                                                   BufferManager* buffer,
                                                   const Rect& domain,
                                                   QuadTreeOptions options) {
  if (store->num_pages() != 0) {
    return Status::InvalidArgument(
        "QuadTree::Create requires an empty page store");
  }
  if (domain.IsEmpty()) {
    return Status::InvalidArgument("QuadTree domain must be non-empty");
  }
  std::unique_ptr<QuadTree> tree(
      new QuadTree(store, buffer, domain, options));
  uint64_t header_page = 0;
  Result<PageHandle> header = buffer->NewPage(tree->store_id_, &header_page);
  if (!header.ok()) return header.status();

  QuadNode root;  // empty leaf
  Result<uint64_t> root_page = tree->AllocateNode(root);
  if (!root_page.ok()) return root_page.status();
  tree->root_page_ = root_page.value();
  return tree;
}

void QuadTree::SerializeNode(const QuadNode& node, uint8_t* out) const {
  StoreScalar<uint16_t>(out, node.is_leaf ? kKindLeaf : kKindInternal);
  StoreScalar<uint16_t>(out + 2,
                        static_cast<uint16_t>(node.is_leaf
                                                  ? node.points.size()
                                                  : 4));
  StoreScalar<uint32_t>(out + 4, 0);
  uint8_t* cursor = out + kHeaderBytes;
  if (node.is_leaf) {
    assert(node.points.size() <= leaf_capacity_);
    for (const LeafEntry& e : node.points) {
      StoreScalar<double>(cursor + 0, e.rec.pt.x);
      StoreScalar<double>(cursor + 8, e.rec.pt.y);
      StoreScalar<int64_t>(cursor + 16, e.rec.id);
      cursor += kLeafEntryBytes;
    }
  } else {
    for (int i = 0; i < 4; ++i) {
      StoreScalar<uint64_t>(cursor, node.children[i]);
      cursor += 8;
    }
  }
}

Status QuadTree::DeserializeNode(const uint8_t* in, QuadNode* out) const {
  const uint16_t kind = LoadScalar<uint16_t>(in);
  const uint16_t count = LoadScalar<uint16_t>(in + 2);
  out->points.clear();
  const uint8_t* cursor = in + kHeaderBytes;
  if (kind == kKindLeaf) {
    out->is_leaf = true;
    if (count > leaf_capacity_) {
      return Status::Corruption("quadtree leaf count exceeds capacity");
    }
    out->points.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      LeafEntry e;
      e.rec.pt.x = LoadScalar<double>(cursor + 0);
      e.rec.pt.y = LoadScalar<double>(cursor + 8);
      e.rec.id = LoadScalar<int64_t>(cursor + 16);
      out->points.push_back(e);
      cursor += kLeafEntryBytes;
    }
  } else if (kind == kKindInternal) {
    out->is_leaf = false;
    for (int i = 0; i < 4; ++i) {
      out->children[i] = LoadScalar<uint64_t>(cursor);
      cursor += 8;
    }
  } else {
    return Status::Corruption("bad quadtree node kind");
  }
  return Status::OK();
}

Result<QuadNode> QuadTree::ReadNode(uint64_t page_no) const {
  Result<PageHandle> page = buffer_->Pin(store_id_, page_no);
  if (!page.ok()) return page.status();
  QuadNode node;
  RINGJOIN_RETURN_IF_ERROR(DeserializeNode(page.value().data(), &node));
  return node;
}

Status QuadTree::WriteNode(uint64_t page_no, const QuadNode& node) {
  Result<PageHandle> page = buffer_->Pin(store_id_, page_no);
  if (!page.ok()) return page.status();
  SerializeNode(node, page.value().mutable_data());
  return Status::OK();
}

Result<uint64_t> QuadTree::AllocateNode(const QuadNode& node) {
  uint64_t page_no = 0;
  Result<PageHandle> page = buffer_->NewPage(store_id_, &page_no);
  if (!page.ok()) return page.status();
  SerializeNode(node, page.value().mutable_data());
  return page_no;
}

Status QuadTree::Insert(const PointRecord& rec) {
  if (!domain_.Contains(rec.pt)) {
    return Status::InvalidArgument("point outside the quadtree domain");
  }
  RINGJOIN_RETURN_IF_ERROR(InsertRec(root_page_, domain_, 0, rec));
  ++num_points_;
  return Status::OK();
}

Status QuadTree::InsertRec(uint64_t page_no, const Rect& region,
                           uint32_t depth, const PointRecord& rec) {
  Result<QuadNode> node_result = ReadNode(page_no);
  if (!node_result.ok()) return node_result.status();
  QuadNode node = std::move(node_result.value());

  if (!node.is_leaf) {
    const Point center = region.Center();
    const int quadrant =
        (rec.pt.x > center.x ? 1 : 0) | (rec.pt.y > center.y ? 2 : 0);
    return InsertRec(node.children[quadrant],
                     QuadNode::ChildRegion(region, quadrant), depth + 1,
                     rec);
  }

  if (node.points.size() < leaf_capacity_) {
    node.points.push_back(LeafEntry{rec});
    return WriteNode(page_no, node);
  }

  // Split the full leaf into four quadrant leaves and retry.
  if (depth >= options_.max_depth) {
    return Status::NotSupported(
        "quadtree leaf overflow at max depth (too many near-duplicate "
        "points for the bucket size)");
  }
  QuadNode internal;
  internal.is_leaf = false;
  QuadNode quadrant_leaves[4];
  const Point center = region.Center();
  for (const LeafEntry& e : node.points) {
    const int quadrant =
        (e.rec.pt.x > center.x ? 1 : 0) | (e.rec.pt.y > center.y ? 2 : 0);
    quadrant_leaves[quadrant].points.push_back(e);
  }
  for (int i = 0; i < 4; ++i) {
    Result<uint64_t> child = AllocateNode(quadrant_leaves[i]);
    if (!child.ok()) return child.status();
    internal.children[i] = child.value();
  }
  RINGJOIN_RETURN_IF_ERROR(WriteNode(page_no, internal));
  // Retry the insert from this (now internal) node.
  return InsertRec(page_no, region, depth, rec);
}

Status QuadTree::RangeSearch(const Rect& box,
                             std::vector<PointRecord>* out) const {
  return RangeRec(root_page_, domain_, box, out);
}

Status QuadTree::RangeRec(uint64_t page_no, const Rect& region,
                          const Rect& box,
                          std::vector<PointRecord>* out) const {
  if (!region.Intersects(box)) return Status::OK();
  Result<QuadNode> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf) {
    for (const LeafEntry& e : node.value().points) {
      if (box.Contains(e.rec.pt)) out->push_back(e.rec);
    }
    return Status::OK();
  }
  for (int i = 0; i < 4; ++i) {
    RINGJOIN_RETURN_IF_ERROR(RangeRec(node.value().children[i],
                                      QuadNode::ChildRegion(region, i), box,
                                      out));
  }
  return Status::OK();
}

Status QuadTree::VisitLeavesDepthFirst(
    const std::function<bool(const QuadNode&, const Rect&)>& callback) const {
  bool keep_going = true;
  return VisitRec(root_page_, domain_, callback, &keep_going);
}

Status QuadTree::VisitRec(
    uint64_t page_no, const Rect& region,
    const std::function<bool(const QuadNode&, const Rect&)>& callback,
    bool* keep_going) const {
  if (!*keep_going) return Status::OK();
  Result<QuadNode> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf) {
    if (!node.value().points.empty()) {
      *keep_going = callback(node.value(), region);
    }
    return Status::OK();
  }
  for (int i = 0; i < 4 && *keep_going; ++i) {
    RINGJOIN_RETURN_IF_ERROR(VisitRec(node.value().children[i],
                                      QuadNode::ChildRegion(region, i),
                                      callback, keep_going));
  }
  return Status::OK();
}

Status QuadTree::CheckInvariants() const {
  uint64_t count = 0;
  RINGJOIN_RETURN_IF_ERROR(CheckRec(root_page_, domain_, &count));
  if (count != num_points_) {
    return Status::Corruption("quadtree point total mismatch");
  }
  return Status::OK();
}

Status QuadTree::CheckRec(uint64_t page_no, const Rect& region,
                          uint64_t* count) const {
  Result<QuadNode> node = ReadNode(page_no);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf) {
    if (node.value().points.size() > leaf_capacity_) {
      return Status::Corruption("quadtree leaf over capacity");
    }
    for (const LeafEntry& e : node.value().points) {
      if (!region.Contains(e.rec.pt)) {
        return Status::Corruption("quadtree point outside its leaf region");
      }
    }
    *count += node.value().points.size();
    return Status::OK();
  }
  for (int i = 0; i < 4; ++i) {
    RINGJOIN_RETURN_IF_ERROR(CheckRec(node.value().children[i],
                                      QuadNode::ChildRegion(region, i),
                                      count));
  }
  return Status::OK();
}

}  // namespace rcj
