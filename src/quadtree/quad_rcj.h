// RCJ over quadtrees: the paper's Section 3 generality claim, realized.
// The filter step is the same best-first traversal with Lemma-1 (point) and
// Lemma-3 (region) half-plane pruning — quadrant regions play the role of
// MBRs; the verification step checks candidate circles with the exact
// diametral predicate via constrained region traversal.
#ifndef RINGJOIN_QUADTREE_QUAD_RCJ_H_
#define RINGJOIN_QUADTREE_QUAD_RCJ_H_

#include <vector>

#include "common/status.h"
#include "core/pair_sink.h"
#include "core/rcj_types.h"
#include "quadtree/quadtree.h"

namespace rcj {

/// Candidate partners of q from a quadtree over P (Algorithm 2 with
/// quadrant regions instead of MBRs).
Status QuadFilterCandidates(const QuadTree& tp, const Point& q,
                            PointId self_skip_id,
                            std::vector<PointRecord>* candidates);

/// Index nested loop RCJ over two quadtrees (INJ of Algorithm 5, with the
/// quadtree as the hierarchical index). Emission and `stats` semantics
/// match RunInj: pairs stream through `sink` in deterministic depth-first
/// order, and a sink returning false stops the traversal with OK.
Status RunQuadRcj(const QuadTree& tq, const QuadTree& tp, PairSink* sink,
                  JoinStats* stats);

}  // namespace rcj

#endif  // RINGJOIN_QUADTREE_QUAD_RCJ_H_
