#include "quadtree/quad_rcj.h"

#include <queue>

#include "geometry/circle.h"
#include "geometry/halfplane.h"

namespace rcj {
namespace {

struct HeapItem {
  double key = 0.0;
  bool is_point = false;
  PointRecord rec;
  uint64_t page = 0;
  Rect region;
};
struct HeapCompare {
  bool operator()(const HeapItem& a, const HeapItem& b) const {
    return a.key > b.key;
  }
};

// Kills `circle` if the subtree under (page, region) of `tree` contains a
// point strictly inside the candidate circle (excluding `skip_id`).
Status QuadVerifyRec(const QuadTree& tree, uint64_t page, const Rect& region,
                     const CandidateCircle& candidate, PointId skip_id,
                     PointId skip_id2, bool* alive) {
  if (!*alive) return Status::OK();
  // Conservative traversal bound (same inflation rationale as the R-tree
  // verifier).
  if (region.MinDist2(candidate.circle.center) >=
      candidate.circle.radius2 * (1.0 + 1e-9)) {
    return Status::OK();
  }
  Result<QuadNode> node = tree.ReadNode(page);
  if (!node.ok()) return node.status();
  if (node.value().is_leaf) {
    for (const LeafEntry& e : node.value().points) {
      if (e.rec.id == skip_id || e.rec.id == skip_id2) continue;
      if (StrictlyInsideDiametral(e.rec.pt, candidate.p.pt,
                                  candidate.q.pt)) {
        *alive = false;
        return Status::OK();
      }
    }
    return Status::OK();
  }
  for (int i = 0; i < 4 && *alive; ++i) {
    RINGJOIN_RETURN_IF_ERROR(
        QuadVerifyRec(tree, node.value().children[i],
                      QuadNode::ChildRegion(region, i), candidate, skip_id,
                      skip_id2, alive));
  }
  return Status::OK();
}

}  // namespace

Status QuadFilterCandidates(const QuadTree& tp, const Point& q,
                            PointId self_skip_id,
                            std::vector<PointRecord>* candidates) {
  candidates->clear();
  std::vector<PruneRegion> regions;

  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare> heap;
  {
    HeapItem root;
    root.page = tp.root_page();
    root.region = tp.domain();
    root.key = root.region.MinDist2(q);
    heap.push(root);
  }

  while (!heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();

    bool pruned = false;
    for (const PruneRegion& region : regions) {
      if (top.is_point ? region.PrunesPoint(top.rec.pt)
                       : region.PrunesRect(top.region)) {
        pruned = true;
        break;
      }
    }
    if (pruned) continue;

    if (top.is_point) {
      if (top.rec.id == self_skip_id) continue;
      candidates->push_back(top.rec);
      regions.emplace_back(q, top.rec.pt);
      continue;
    }

    Result<QuadNode> node = tp.ReadNode(top.page);
    if (!node.ok()) return node.status();
    if (node.value().is_leaf) {
      for (const LeafEntry& e : node.value().points) {
        HeapItem item;
        item.is_point = true;
        item.rec = e.rec;
        item.key = Dist2(q, e.rec.pt);
        heap.push(item);
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        HeapItem item;
        item.page = node.value().children[i];
        item.region = QuadNode::ChildRegion(top.region, i);
        item.key = item.region.MinDist2(q);
        heap.push(item);
      }
    }
  }
  return Status::OK();
}

Status RunQuadRcj(const QuadTree& tq, const QuadTree& tp, PairSink* sink,
                  JoinStats* stats) {
  uint64_t emitted = 0;
  std::vector<PointRecord> candidates;

  Status inner_status;
  Status visit_status = tq.VisitLeavesDepthFirst(
      [&](const QuadNode& leaf, const Rect& /*region*/) {
        for (const LeafEntry& entry : leaf.points) {
          const PointRecord& q = entry.rec;
          inner_status =
              QuadFilterCandidates(tp, q.pt, kInvalidPointId, &candidates);
          if (!inner_status.ok()) return false;
          stats->candidates += candidates.size();
          for (const PointRecord& p : candidates) {
            CandidateCircle candidate = CandidateCircle::Make(p, q);
            bool alive = true;
            inner_status =
                QuadVerifyRec(tq, tq.root_page(), tq.domain(), candidate,
                              q.id, kInvalidPointId, &alive);
            if (!inner_status.ok()) return false;
            if (alive) {
              inner_status =
                  QuadVerifyRec(tp, tp.root_page(), tp.domain(), candidate,
                                p.id, kInvalidPointId, &alive);
              if (!inner_status.ok()) return false;
            }
            if (alive) {
              ++emitted;
              // Early termination: stop the traversal; inner_status stays
              // OK, so the join reports success with a prefix emitted.
              if (!sink->Emit(RcjPair{p, q, candidate.circle})) return false;
            }
          }
        }
        return true;
      });
  RINGJOIN_RETURN_IF_ERROR(visit_status);
  RINGJOIN_RETURN_IF_ERROR(inner_status);
  stats->results += emitted;
  return Status::OK();
}

}  // namespace rcj
