// Disk-based bucket quadtree — the paper's Section 3 claim is that the RCJ
// methodology "is directly applicable to other hierarchical spatial indexes
// (e.g., point quad-tree)". This substrate proves it: the same Lemma-1/3
// half-plane pruning and the same verification predicate drive an RCJ join
// over quadtrees (see quad_rcj.h), sharing the BufferManager cost
// accounting with the R-tree pipeline.
//
// Structure: a region quadtree over a fixed domain rectangle. Leaves hold
// up to a page worth of points; a full leaf splits into four equal
// quadrants. Node pages:
//   [u16 kind][u16 count][u32 pad]
//   leaf:     count * {x f64, y f64, id i64}
//   internal: 4 * u64 child page ids (quadrant order: x-low/y-low,
//             x-high/y-low, x-low/y-high, x-high/y-high)
#ifndef RINGJOIN_QUADTREE_QUADTREE_H_
#define RINGJOIN_QUADTREE_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/node.h"  // reuses LeafEntry
#include "storage/buffer_manager.h"
#include "storage/page_store.h"

namespace rcj {

/// Decoded quadtree node.
struct QuadNode {
  bool is_leaf = true;
  std::vector<LeafEntry> points;   // leaf payload
  uint64_t children[4] = {0, 0, 0, 0};  // internal payload

  /// Region of child quadrant i within `region`.
  static Rect ChildRegion(const Rect& region, int quadrant);
};

/// Tuning knobs for the quadtree.
struct QuadTreeOptions {
  /// Splitting a leaf deeper than this fails (degenerate duplicate-heavy
  /// input); 2^-48 of the domain is far below double resolution anyway.
  uint32_t max_depth = 48;
};

/// A disk-resident bucket quadtree over a fixed domain rectangle. Shares
/// PageStore/BufferManager injection with RTree so joins across index
/// types are cost-accounted identically.
class QuadTree {
 public:
  /// Creates an empty tree over `domain`. Page 0 is the header.
  static Result<std::unique_ptr<QuadTree>> Create(PageStore* store,
                                                  BufferManager* buffer,
                                                  const Rect& domain,
                                                  QuadTreeOptions options = {});

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(QuadTree);

  /// Inserts one point; it must lie inside the domain rectangle.
  Status Insert(const PointRecord& rec);

  /// All points inside the closed rectangle.
  Status RangeSearch(const Rect& box, std::vector<PointRecord>* out) const;

  /// Depth-first traversal over (non-empty) leaves.
  Status VisitLeavesDepthFirst(
      const std::function<bool(const QuadNode&, const Rect& region)>&
          callback) const;

  /// Reads one node through the buffer (counts accesses/faults).
  Result<QuadNode> ReadNode(uint64_t page_no) const;

  uint64_t root_page() const { return root_page_; }
  const Rect& domain() const { return domain_; }
  uint64_t num_points() const { return num_points_; }
  uint32_t leaf_capacity() const { return leaf_capacity_; }
  BufferManager* buffer() const { return buffer_; }
  uint64_t num_pages() const { return store_->num_pages(); }

  /// Structural check: every point inside its leaf region, counts within
  /// capacity, total equals num_points().
  Status CheckInvariants() const;

 private:
  QuadTree(PageStore* store, BufferManager* buffer, const Rect& domain,
           QuadTreeOptions options);

  Status WriteNode(uint64_t page_no, const QuadNode& node);
  Result<uint64_t> AllocateNode(const QuadNode& node);
  Status InsertRec(uint64_t page_no, const Rect& region, uint32_t depth,
                   const PointRecord& rec);
  Status RangeRec(uint64_t page_no, const Rect& region, const Rect& box,
                  std::vector<PointRecord>* out) const;
  Status VisitRec(uint64_t page_no, const Rect& region,
                  const std::function<bool(const QuadNode&, const Rect&)>&
                      callback,
                  bool* keep_going) const;
  Status CheckRec(uint64_t page_no, const Rect& region,
                  uint64_t* count) const;

  void SerializeNode(const QuadNode& node, uint8_t* out) const;
  Status DeserializeNode(const uint8_t* in, QuadNode* out) const;

  PageStore* store_;
  BufferManager* buffer_;
  int store_id_;
  Rect domain_;
  QuadTreeOptions options_;
  uint32_t leaf_capacity_;
  uint64_t root_page_ = 0;
  uint64_t num_points_ = 0;
};

}  // namespace rcj

#endif  // RINGJOIN_QUADTREE_QUADTREE_H_
