#include "live/live_environment.h"

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "live/mutation_log.h"
#include "obs/metrics.h"
#include "rtree/point_source.h"

namespace rcj {
namespace {

/// Registry mirrors of the live tier: mutation rate, compaction duration
/// (rebuild + swap + pin drain), and the pin-drain wait alone — the part
/// of a compaction that in-flight queries stretch.
struct LiveMetrics {
  obs::Counter* mutations;
  obs::Counter* compactions;
  obs::Histogram* compaction_seconds;
  obs::Histogram* pin_drain_seconds;

  static const LiveMetrics& Get() {
    static const LiveMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      LiveMetrics m;
      m.mutations = registry.counter("rcj_live_mutations_total");
      m.compactions = registry.counter("rcj_live_compactions_total");
      m.compaction_seconds =
          registry.histogram("rcj_live_compaction_seconds");
      m.pin_drain_seconds =
          registry.histogram("rcj_live_pin_drain_seconds");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

namespace live_internal {

Pin::Pin(std::shared_ptr<BaseState> b) : base(std::move(b)) {
  std::lock_guard<std::mutex> lock(base->mu);
  ++base->pins;
}

Pin::~Pin() {
  std::lock_guard<std::mutex> lock(base->mu);
  if (--base->pins == 0) base->cv.notify_all();
}

}  // namespace live_internal

namespace {

bool SameRecord(const PointRecord& a, const PointRecord& b) {
  return a.id == b.id && a.pt.x == b.pt.x && a.pt.y == b.pt.y;
}

// One side of the overlay fold that runs when a compaction swaps in its
// rebuilt base. `cap` is the overlay version the rebuild consumed, `cur`
// the live overlay at swap time (cur extends cap, except where mutations
// after the capture touched captured state). Record-level arithmetic:
//
//   new_delta = cur.delta records not folded into the base
//             = { r in cur.delta : no identical record in cap.delta }
//   new_dead  = (cur.dead \ cap.dead)   — cap.dead ids were simply left
//                                         out of the new base —
//             ∪ { id of r in cap.delta with no identical record in
//                 cur.delta }           — a captured insert deleted (or
//                                         replaced) during the rebuild now
//                                         has a base copy to tombstone.
//
// Matching by full record (id AND coordinates) matters: delete-then-
// reinsert of a captured id with new coordinates must keep the new delta
// record and tombstone the folded copy.
void FoldSide(const std::vector<PointRecord>& cur_delta,
              const std::unordered_set<PointId>& cur_dead,
              const std::vector<PointRecord>& cap_delta,
              const std::unordered_set<PointId>& cap_dead,
              std::vector<PointRecord>* new_delta,
              std::unordered_set<PointId>* new_dead) {
  std::unordered_map<PointId, const PointRecord*> cap;
  cap.reserve(cap_delta.size());
  for (const PointRecord& rec : cap_delta) cap.emplace(rec.id, &rec);
  std::unordered_map<PointId, const PointRecord*> cur;
  cur.reserve(cur_delta.size());
  for (const PointRecord& rec : cur_delta) cur.emplace(rec.id, &rec);

  for (const PointRecord& rec : cur_delta) {
    const auto it = cap.find(rec.id);
    if (it != cap.end() && SameRecord(*it->second, rec)) continue;
    new_delta->push_back(rec);
  }
  for (const PointId id : cur_dead) {
    if (cap_dead.count(id) == 0) new_dead->insert(id);
  }
  for (const auto& entry : cap) {
    const auto it = cur.find(entry.first);
    if (it == cur.end() || !SameRecord(*it->second, *entry.second)) {
      new_dead->insert(entry.first);
    }
  }
}

Status CheckUniqueIds(const std::vector<PointRecord>& set, const char* label,
                      std::unordered_set<PointId>* live) {
  live->clear();
  live->reserve(set.size());
  for (const PointRecord& rec : set) {
    if (rec.id == kInvalidPointId) {
      return Status::InvalidArgument(std::string(label) +
                                     " contains the invalid point id");
    }
    if (!live->insert(rec.id).second) {
      return Status::InvalidArgument(std::string(label) + " duplicates id " +
                                     std::to_string(rec.id));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LiveEnvironment>> LiveEnvironment::Create(
    const std::vector<PointRecord>& qset,
    const std::vector<PointRecord>& pset, const LiveOptions& options) {
  return CreateImpl(qset, pset, /*self_join=*/false, options);
}

Result<std::unique_ptr<LiveEnvironment>> LiveEnvironment::CreateSelf(
    const std::vector<PointRecord>& set, const LiveOptions& options) {
  return CreateImpl(set, set, /*self_join=*/true, options);
}

Result<std::unique_ptr<LiveEnvironment>> LiveEnvironment::CreateImpl(
    const std::vector<PointRecord>& qset,
    const std::vector<PointRecord>& pset, bool self_join,
    const LiveOptions& options) {
  std::unique_ptr<LiveEnvironment> env(new LiveEnvironment());
  env->options_ = options;
  env->self_join_ = self_join;
  env->epoch_ = options.initial_epoch;
  RINGJOIN_RETURN_IF_ERROR(CheckUniqueIds(qset, "qset", &env->live_q_));
  env->base_q_ = qset;
  if (!self_join) {
    RINGJOIN_RETURN_IF_ERROR(CheckUniqueIds(pset, "pset", &env->live_p_));
    env->base_p_ = pset;
  }

  Result<std::unique_ptr<RcjEnvironment>> base =
      env->BuildBase(env->base_q_, env->base_p_);
  if (!base.ok()) return base.status();
  env->base_ = std::make_shared<live_internal::BaseState>();
  env->base_->env = std::move(base).value();

  env->overlay_ = std::make_shared<DeltaOverlay>();
  env->overlay_->self_join = self_join;
  env->overlay_->epoch = options.initial_epoch;

  if (options.compact_threshold > 0) {
    env->compactor_ =
        std::thread([raw = env.get()] { raw->CompactorLoop(); });
  }
  return env;
}

LiveEnvironment::~LiveEnvironment() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
}

Result<std::unique_ptr<RcjEnvironment>> LiveEnvironment::BuildBase(
    const std::vector<PointRecord>& qset,
    const std::vector<PointRecord>& pset) const {
  if (self_join_) {
    return RcjEnvironment::BuildSelf(qset, options_.build);
  }
  if (options_.build.storage != StorageBackend::kMem &&
      options_.build.bulk_load) {
    // File-backed bases go through the external STR loader so a rebuild's
    // page writes stay bounded regardless of environment size.
    VectorPointSource qsource(&qset);
    VectorPointSource psource(&pset);
    return RcjEnvironment::BuildExternal(&qsource, &psource, options_.build);
  }
  return RcjEnvironment::Build(qset, pset, options_.build);
}

std::unordered_set<PointId>& LiveEnvironment::LiveSet(LiveSide side) {
  return (side == LiveSide::kQ || self_join_) ? live_q_ : live_p_;
}

void LiveEnvironment::EnsurePrivateOverlay() {
  // Snapshots (and an in-flight compaction's capture) share the current
  // version; never mutate what they can see.
  if (overlay_.use_count() > 1) {
    overlay_ = std::make_shared<DeltaOverlay>(*overlay_);
  }
}

void LiveEnvironment::MaybeSignalCompactor() {
  if (options_.compact_threshold > 0 &&
      overlay_->pending() >= options_.compact_threshold) {
    compact_cv_.notify_one();
  }
}

Status LiveEnvironment::Insert(LiveSide side, const PointRecord& rec) {
  if (rec.id == kInvalidPointId) {
    return Status::InvalidArgument("insert: invalid point id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<PointId>& live = LiveSet(side);
  if (live.count(rec.id) != 0) {
    return Status::InvalidArgument("insert: id " + std::to_string(rec.id) +
                                   " is already live on side " +
                                   LiveSideName(side));
  }
  // Write-ahead: journal the mutation before touching any state, so a
  // crash either shows the whole mutation on replay or none of it, and
  // an append failure rejects the mutation without applying it.
  if (log_ != nullptr) {
    WalRecord record;
    record.epoch = epoch_ + 1;
    record.op = WalOp::kInsert;
    record.side = side;
    record.rec = rec;
    RINGJOIN_RETURN_IF_ERROR(log_->Append(record));
  }
  live.insert(rec.id);
  EnsurePrivateOverlay();
  overlay_->mutable_delta(side).push_back(rec);
  overlay_->epoch = ++epoch_;
  LiveMetrics::Get().mutations->Add();
  MaybeSignalCompactor();
  return Status::OK();
}

Status LiveEnvironment::Delete(LiveSide side, PointId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unordered_set<PointId>& live = LiveSet(side);
  const auto it = live.find(id);
  if (it == live.end()) {
    return Status::NotFound("delete: id " + std::to_string(id) +
                            " is not live on side " + LiveSideName(side));
  }
  if (log_ != nullptr) {
    WalRecord record;
    record.epoch = epoch_ + 1;
    record.op = WalOp::kDelete;
    record.side = side;
    record.rec.id = id;
    RINGJOIN_RETURN_IF_ERROR(log_->Append(record));
  }
  EnsurePrivateOverlay();
  std::vector<PointRecord>& delta = overlay_->mutable_delta(side);
  bool was_delta = false;
  for (auto rec = delta.begin(); rec != delta.end(); ++rec) {
    if (rec->id == id) {
      delta.erase(rec);
      was_delta = true;
      break;
    }
  }
  // A delta record just disappears; a base point needs a tombstone.
  if (!was_delta) overlay_->mutable_dead(side).insert(id);
  live.erase(it);
  overlay_->epoch = ++epoch_;
  LiveMetrics::Get().mutations->Add();
  MaybeSignalCompactor();
  return Status::OK();
}

LiveSnapshot LiveEnvironment::TakeSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  LiveSnapshot snapshot;
  snapshot.pin_ = std::make_shared<live_internal::Pin>(base_);
  snapshot.overlay_ = overlay_;
  return snapshot;
}

Status LiveEnvironment::Compact() {
  std::lock_guard<std::mutex> serialize(compact_mu_);

  std::shared_ptr<live_internal::BaseState> old_base;
  std::shared_ptr<const DeltaOverlay> captured;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overlay_->empty()) return Status::OK();
    old_base = base_;
    captured = overlay_;  // shared: later mutations copy-on-write
  }
  const auto compact_start = std::chrono::steady_clock::now();

  // Compose and rebuild outside mu_ — mutations and queries proceed
  // against the old base meanwhile. base_q_/base_p_ are written only by
  // compactions, which compact_mu_ serializes, so reading them here
  // without mu_ is safe.
  std::vector<PointRecord> new_q =
      EffectivePointset(base_q_, *captured, LiveSide::kQ);
  std::vector<PointRecord> new_p;
  if (!self_join_) {
    new_p = EffectivePointset(base_p_, *captured, LiveSide::kP);
  }

  Result<std::unique_ptr<RcjEnvironment>> built = BuildBase(new_q, new_p);
  if (!built.ok()) return built.status();
  auto fresh = std::make_shared<live_internal::BaseState>();
  fresh->env = std::move(built).value();

  const RcjEnvironment* retired = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto folded = std::make_shared<DeltaOverlay>();
    folded->self_join = self_join_;
    folded->epoch = epoch_;
    FoldSide(overlay_->delta_q, overlay_->dead_q, captured->delta_q,
             captured->dead_q, &folded->delta_q, &folded->dead_q);
    if (!self_join_) {
      FoldSide(overlay_->delta_p, overlay_->dead_p, captured->delta_p,
               captured->dead_p, &folded->delta_p, &folded->dead_p);
    }
    retired = old_base->env.get();
    base_ = std::move(fresh);
    overlay_ = std::move(folded);
    base_q_ = std::move(new_q);
    if (!self_join_) base_p_ = std::move(new_p);
    ++compactions_;
  }

  // Checkpoint the journal against the base just installed: everything
  // at or below the captured epoch is folded into base_q_/base_p_ (which
  // only compactions write, serialized by compact_mu_, so reading them
  // here without mu_ is safe — same argument as the rebuild above). A
  // checkpoint failure is reported but leaves durability intact: replay
  // still works from the previous snapshot plus the unshortened journal.
  Status checkpoint_status = Status::OK();
  if (log_ != nullptr) {
    checkpoint_status =
        log_->Checkpoint(captured->epoch, self_join_, base_q_,
                         self_join_ ? std::vector<PointRecord>() : base_p_);
  }

  // New snapshots pin the new base from here on. Drain the readers still
  // inside the retired one, let the caches drop their views (the PR-5
  // generation contract), then destroy its trees.
  const auto drain_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(old_base->mu);
    old_base->cv.wait(lock, [&] { return old_base->pins == 0; });
  }
  LiveMetrics::Get().pin_drain_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count());
  if (hook_) hook_(retired);
  old_base->env.reset();
  LiveMetrics::Get().compactions->Add();
  LiveMetrics::Get().compaction_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    compact_start)
          .count());
  return checkpoint_status;
}

void LiveEnvironment::CompactorLoop() {
  // Retry only after the next mutation when an attempt fails (or folds
  // into a still-over-threshold overlay): epoch_ moves on every mutation.
  uint64_t last_attempt = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      compact_cv_.wait(lock, [&] {
        return stop_ ||
               (overlay_->pending() >= options_.compact_threshold &&
                epoch_ != last_attempt);
      });
      if (stop_) return;
      last_attempt = epoch_;
    }
    const Status status = Compact();
    static_cast<void>(status);  // a failed rebuild retries on the next wake
  }
}

LiveStats LiveEnvironment::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveStats stats;
  stats.epoch = epoch_;
  stats.generation = base_->env->generation();
  stats.compactions = compactions_;
  stats.delta_size =
      overlay_->delta_q.size() +
      (self_join_ ? 0 : overlay_->delta_p.size());
  stats.tombstones = overlay_->tombstones();
  stats.base_q = base_q_.size();
  stats.base_p = self_join_ ? base_q_.size() : base_p_.size();
  return stats;
}

void LiveEnvironment::EffectivePointsets(std::vector<PointRecord>* q,
                                         std::vector<PointRecord>* p) const {
  std::lock_guard<std::mutex> lock(mu_);
  *q = EffectivePointset(base_q_, *overlay_, LiveSide::kQ);
  if (p != nullptr) {
    *p = self_join_ ? *q
                    : EffectivePointset(base_p_, *overlay_, LiveSide::kP);
  }
}

void LiveEnvironment::AttachLog(std::unique_ptr<MutationLog> log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = std::move(log);
}

Status ReplayRecovery(const WalRecovery& recovery, LiveEnvironment* env) {
  for (const WalRecord& record : recovery.records) {
    Status status;
    switch (record.op) {
      case WalOp::kInsert:
        status = env->Insert(record.side, record.rec);
        break;
      case WalOp::kDelete:
        status = env->Delete(record.side, record.rec.id);
        break;
    }
    if (!status.ok()) {
      return Status::Corruption("wal replay: epoch " +
                                std::to_string(record.epoch) + ": " +
                                status.ToString());
    }
    if (env->stats().epoch != record.epoch) {
      return Status::Corruption(
          "wal replay: record epoch " + std::to_string(record.epoch) +
          " replayed as epoch " + std::to_string(env->stats().epoch) +
          "; the journal does not describe this environment");
    }
  }
  return Status::OK();
}

}  // namespace rcj
