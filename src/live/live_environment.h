// Live environments: MVCC mutation layer over the static RCJ stack.
//
// A LiveEnvironment wraps an STR-packed base RcjEnvironment with a
// DeltaOverlay (src/core/delta_overlay.h): inserts accumulate in per-side
// delta lists, deletes tombstone base points, and every mutation publishes
// a new immutable overlay version (copy-on-write when snapshots still hold
// the old one). Readers call TakeSnapshot() to get a consistent
// (base tree, overlay epoch) pair; the snapshot pins the base so
// compaction can never destroy trees a query is traversing.
//
// Compaction folds the delta into a freshly bulk-loaded base (the
// external-memory STR loader for file/mmap backends), swaps it in under
// the environment lock, waits for the old base's pins to drain, fires the
// invalidation hook (the PR-5 generation contract: engine/service/shard
// caches drop their views of the retired environment), and only then
// destroys the old trees. Mutations and queries proceed concurrently with
// the rebuild — the only blocking window is the O(1) pointer swap.
//
// Thread safety: every public method is safe to call concurrently.
// Snapshots are value types; they may outlive the LiveEnvironment (they
// keep the pinned base and overlay version alive).
#ifndef RINGJOIN_LIVE_LIVE_ENVIRONMENT_H_
#define RINGJOIN_LIVE_LIVE_ENVIRONMENT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/delta_overlay.h"
#include "core/query_spec.h"
#include "core/runner.h"

namespace rcj {

class MutationLog;
struct WalRecovery;

namespace live_internal {

/// One base environment plus its pin count. Snapshots hold it via
/// shared_ptr, so a retired base outlives the LiveEnvironment if a
/// snapshot does; compaction waits for pins to drain before destroying
/// the trees.
struct BaseState {
  std::unique_ptr<RcjEnvironment> env;
  std::mutex mu;
  std::condition_variable cv;
  size_t pins = 0;
};

/// RAII pin on a BaseState (one per snapshot version, shared by copies).
struct Pin {
  explicit Pin(std::shared_ptr<BaseState> base);
  ~Pin();
  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(Pin);
  std::shared_ptr<BaseState> base;
};

}  // namespace live_internal

/// Construction-time knobs of a live environment.
struct LiveOptions {
  /// How base environments are built — at Create() and again at every
  /// compaction (same backend, storage_dir, page size, buffer sizing).
  /// File/mmap-backed bases are rebuilt with the external STR loader,
  /// which never materializes resident pointsets, so such environments
  /// reject algorithm=brute.
  RcjRunOptions build;
  /// When > 0, a background thread compacts as soon as the overlay's
  /// pending() (delta records + tombstones) reaches this many mutations.
  /// 0 = manual Compact() only.
  size_t compact_threshold = 0;
  /// Starting mutation epoch. 0 for a fresh environment; WAL recovery
  /// passes the recovered snapshot's epoch so replayed mutations repeat
  /// their original epoch numbers exactly.
  uint64_t initial_epoch = 0;
};

/// A point-in-time view of LiveEnvironment counters (see STATS on the
/// wire).
struct LiveStats {
  uint64_t epoch = 0;        ///< mutations applied since Create().
  uint64_t generation = 0;   ///< current base's RcjEnvironment generation.
  uint64_t compactions = 0;  ///< compactions completed.
  uint64_t delta_size = 0;   ///< pending inserted records (both sides).
  uint64_t tombstones = 0;   ///< pending deleted base ids (both sides).
  uint64_t base_q = 0;       ///< points packed into the current base T_Q.
  uint64_t base_p = 0;       ///< points packed into the current base T_P.
};

/// A consistent read view: one pinned base environment plus one frozen
/// overlay version. Copyable value type; copies share the pin. Queries
/// built from Spec() keep every determinism guarantee of the static
/// stack — the merged stream is identical across the serial runner and
/// any engine thread count.
class LiveSnapshot {
 public:
  LiveSnapshot() = default;

  /// The pinned base. Valid as long as any copy of this snapshot lives.
  const RcjEnvironment* env() const { return pin_->base->env.get(); }

  /// The frozen overlay version, or null when there are no pending
  /// mutations (queries then take the pure static path).
  const DeltaOverlay* overlay() const {
    return overlay_ != nullptr && !overlay_->empty() ? overlay_.get()
                                                     : nullptr;
  }

  /// Mutation epoch this snapshot observes.
  uint64_t epoch() const {
    return overlay_ != nullptr ? overlay_->epoch : 0;
  }

  /// A QuerySpec bound to the pinned base with the overlay attached.
  QuerySpec Spec() const {
    QuerySpec spec = QuerySpec::For(env());
    spec.overlay = overlay();
    return spec;
  }

  /// Serial merged execution against the pinned base (the streaming
  /// primary of RcjEnvironment::Run, same cold-buffer semantics). Serial
  /// runs share the base's buffer, so at most one may execute at a time —
  /// concurrent readers go through the engine, which opens private views.
  Status Run(const QuerySpec& spec, PairSink* sink, JoinStats* stats) const {
    return pin_->base->env->Run(spec, sink, stats);
  }

  /// Collecting convenience over the streaming serial run.
  Result<RcjRunResult> Run(const QuerySpec& spec) const {
    return pin_->base->env->Run(spec);
  }

 private:
  friend class LiveEnvironment;
  std::shared_ptr<live_internal::Pin> pin_;
  std::shared_ptr<const DeltaOverlay> overlay_;
};

class LiveEnvironment {
 public:
  /// Builds a live two-dataset environment over `qset`/`pset`. Point ids
  /// must be unique within each side (and valid); mutations rely on it.
  /// Empty sides are fine — a pure-delta environment starts from empty
  /// base trees.
  static Result<std::unique_ptr<LiveEnvironment>> Create(
      const std::vector<PointRecord>& qset,
      const std::vector<PointRecord>& pset, const LiveOptions& options);

  /// Self-join flavour (one dataset; both LiveSide names address it).
  static Result<std::unique_ptr<LiveEnvironment>> CreateSelf(
      const std::vector<PointRecord>& set, const LiveOptions& options);

  /// Stops the background compactor. Outstanding snapshots stay valid —
  /// they own what they pinned.
  ~LiveEnvironment();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(LiveEnvironment);

  /// Inserts a new live point. InvalidArgument if the id is invalid or
  /// already live on that side. O(1); publishes a new overlay epoch.
  Status Insert(LiveSide side, const PointRecord& rec);

  /// Deletes a live point by id: a delta record is dropped from its list,
  /// a base point is tombstoned. NotFound if the id is not live.
  Status Delete(LiveSide side, PointId id);

  /// Synchronous compaction barrier: folds every mutation applied before
  /// the call into a freshly bulk-loaded base, retires the old one (after
  /// its reader pins drain and the invalidation hook has run), and
  /// returns. Mutations and snapshots taken during the rebuild are
  /// preserved — they land in the successor overlay. No-op when nothing
  /// is pending. Serialized with the background compactor.
  Status Compact();

  /// A consistent (pinned base, frozen overlay) read view.
  LiveSnapshot TakeSnapshot();

  LiveStats stats() const;
  bool self_join() const { return self_join_; }

  /// Called once per retired base environment, after its pins drained and
  /// before its trees are destroyed — wire this to the cache-invalidation
  /// entry points keyed by environment pointer (Engine, Service,
  /// ShardRouter). Set before the environment is shared; not guarded
  /// against concurrent mutation.
  void set_invalidation_hook(
      std::function<void(const RcjEnvironment*)> hook) {
    hook_ = std::move(hook);
  }

  /// The current live membership as plain vectors (p == q for self-join).
  /// The brute-force oracle the churn tests recompute against.
  void EffectivePointsets(std::vector<PointRecord>* q,
                          std::vector<PointRecord>* p) const;

  /// Attaches the write-ahead journal. Every later Insert/Delete is
  /// appended (and group-committed) before it is applied — an append
  /// error fails the mutation without applying it — and every Compact()
  /// checkpoints the folded base so replay stays bounded. Attach *after*
  /// replaying recovered records (replay must not re-journal them); not
  /// guarded against concurrent mutation, like set_invalidation_hook.
  void AttachLog(std::unique_ptr<MutationLog> log);

 private:
  LiveEnvironment() = default;

  static Result<std::unique_ptr<LiveEnvironment>> CreateImpl(
      const std::vector<PointRecord>& qset,
      const std::vector<PointRecord>& pset, bool self_join,
      const LiveOptions& options);

  /// Builds a base environment over the given sets per options_.build.
  Result<std::unique_ptr<RcjEnvironment>> BuildBase(
      const std::vector<PointRecord>& qset,
      const std::vector<PointRecord>& pset) const;

  /// Clones the overlay before mutating when snapshots share it.
  void EnsurePrivateOverlay();

  /// The live-id set of `side` (the Q set in self-join mode).
  std::unordered_set<PointId>& LiveSet(LiveSide side);

  /// Wakes the background compactor when the threshold is crossed.
  /// Caller holds mu_.
  void MaybeSignalCompactor();

  void CompactorLoop();

  LiveOptions options_;
  bool self_join_ = false;
  std::function<void(const RcjEnvironment*)> hook_;
  std::unique_ptr<MutationLog> log_;  ///< null = not durable.

  mutable std::mutex mu_;  // guards everything below
  std::shared_ptr<live_internal::BaseState> base_;
  std::shared_ptr<DeltaOverlay> overlay_;
  std::vector<PointRecord> base_q_;  // what the current base was packed from
  std::vector<PointRecord> base_p_;  // empty in self-join mode
  std::unordered_set<PointId> live_q_;  // ids alive across base + delta
  std::unordered_set<PointId> live_p_;  // unused in self-join mode
  uint64_t epoch_ = 0;
  uint64_t compactions_ = 0;

  std::mutex compact_mu_;  // serializes compactions; held outside mu_
  std::condition_variable compact_cv_;  // signaled under mu_
  std::thread compactor_;
  bool stop_ = false;
};

/// Applies recovered journal records to `env` through the normal
/// Insert/Delete path, in order, verifying that each replayed mutation
/// reproduces its recorded epoch (a mismatch is Corruption — the journal
/// does not describe this environment's history). Call on an environment
/// created with initial_epoch == the recovery's snapshot epoch and with
/// no log attached yet.
Status ReplayRecovery(const WalRecovery& recovery, LiveEnvironment* env);

}  // namespace rcj

#endif  // RINGJOIN_LIVE_LIVE_ENVIRONMENT_H_
