// MutationLog — the per-environment write-ahead journal that makes live
// environments durable.
//
// A LiveEnvironment with a log attached appends every INSERT/DELETE to
// the journal *before* applying it, so a crash at any instant loses at
// most the not-yet-acknowledged suffix. On restart the serving layer
// opens the same directory, gets back the durable history, and replays
// it through the ordinary mutation path — the recovered environment is
// indistinguishable (same epochs, same merged query streams) from one
// that never crashed.
//
// On-disk layout, one directory per environment:
//
//   <dir>/wal.log    append-only journal of mutation records
//   <dir>/base.snap  optional checkpoint: the folded pointsets + epoch
//
// Journal record framing (all integers little-endian fixed-width):
//
//   [u32 payload_len][u32 masked_crc32c][payload]
//   payload = [u64 epoch][u8 op][u8 side][i64 id][f64 x][f64 y]
//
// The CRC covers the payload and is stored masked (common/crc32c.h), so
// a torn tail — a partial header, a short payload, or bytes that never
// made it through the page cache — fails verification instead of
// replaying garbage. Replay stops at the first bad record and truncates
// the file there: the journal is exactly the durable prefix afterwards.
//
// Group commit: every append write()s immediately, but fdatasync is
// batched — with sync_interval_ms > 0 the log syncs once per window
// instead of once per record, trading a bounded post-crash ack loss
// window for an order of magnitude of mutation throughput (the classic
// WAL group-commit knob). 0 syncs every append: an acknowledged
// mutation is durable, full stop.
//
// Checkpoints bound replay cost. Compaction folds the overlay into a
// fresh base; Checkpoint() persists that base atomically
// (base.snap.tmp → fsync → rename → dir fsync) and then rewrites the
// journal keeping only records newer than the folded epoch (same
// tmp/rename dance). A crash between the two renames is safe in both
// orders: replay loads whichever base.snap is complete and skips
// journal records at or below its epoch.
#ifndef RINGJOIN_LIVE_MUTATION_LOG_H_
#define RINGJOIN_LIVE_MUTATION_LOG_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/delta_overlay.h"

namespace rcj {

struct MutationLogOptions {
  /// The environment's journal directory; created (with parents) by
  /// Open() if missing.
  std::string dir;
  /// Group-commit window: fdatasync at most once per this many
  /// milliseconds. 0 = sync every append (strict durability).
  int sync_interval_ms = 0;
};

/// The two journaled verbs. COMPACT is not journaled — it is a
/// checkpoint, not a mutation (replaying base + journal without it
/// yields the same membership).
enum class WalOp : uint8_t { kInsert = 0, kDelete = 1 };

/// One journal record: a mutation stamped with the epoch it produced.
/// For kDelete only rec.id is meaningful.
struct WalRecord {
  uint64_t epoch = 0;
  WalOp op = WalOp::kInsert;
  LiveSide side = LiveSide::kQ;
  PointRecord rec;
};

/// What Open() recovered from the directory. The caller rebuilds the
/// environment from the snapshot pointsets (or its original datasets
/// when has_snapshot is false), sets the initial epoch, and replays
/// `records` in order through the normal mutation path.
struct WalRecovery {
  bool has_snapshot = false;
  uint64_t snapshot_epoch = 0;  ///< epoch folded into base_q/base_p.
  bool self_join = false;       ///< snapshot's join flavour.
  std::vector<PointRecord> base_q;
  std::vector<PointRecord> base_p;
  /// Journal records newer than the snapshot epoch, in append order.
  std::vector<WalRecord> records;
  /// Torn-tail bytes dropped (and truncated off wal.log) during replay.
  uint64_t truncated_bytes = 0;
  /// Records skipped because a checkpoint folded them but crashed before
  /// rewriting the journal (epoch <= snapshot_epoch).
  uint64_t skipped_records = 0;
};

class MutationLog {
 public:
  /// Opens (creating if needed) the journal directory, loads the base
  /// snapshot, replays the journal into `*recovery` (truncating a torn
  /// tail in place), and returns the log ready for appends. Corruption
  /// anywhere but the journal tail — a base.snap that fails its CRC —
  /// is an error, not a silent reset.
  static Result<std::unique_ptr<MutationLog>> Open(
      const MutationLogOptions& options, WalRecovery* recovery);

  ~MutationLog();

  RINGJOIN_DISALLOW_COPY_AND_ASSIGN(MutationLog);

  /// Appends one record and applies the group-commit policy. An error
  /// means the mutation must not be applied; a write that failed partway
  /// wedges the log (every later append fails) so a torn middle can
  /// never be extended with live records.
  Status Append(const WalRecord& record);

  /// Forces pending bytes to disk (fdatasync) regardless of the window.
  Status Sync();

  /// Persists the folded base and drops journal records at or below
  /// `folded_epoch`. Called by compaction after its in-memory swap; the
  /// pointsets are the exact sets the new base was packed from
  /// (base_p empty for self-join).
  Status Checkpoint(uint64_t folded_epoch, bool self_join,
                    const std::vector<PointRecord>& base_q,
                    const std::vector<PointRecord>& base_p);

  const std::string& dir() const { return options_.dir; }

 private:
  explicit MutationLog(MutationLogOptions options);

  Status SyncLocked();

  MutationLogOptions options_;

  std::mutex mu_;
  int fd_ = -1;          ///< wal.log, O_APPEND.
  bool wedged_ = false;  ///< a partial write poisoned the tail.
  bool dirty_ = false;   ///< bytes written since the last fdatasync.
  std::chrono::steady_clock::time_point last_sync_;
};

}  // namespace rcj

#endif  // RINGJOIN_LIVE_MUTATION_LOG_H_
