#include "live/mutation_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace rcj {
namespace {

/// Registry mirrors of the durability tier: append/sync/checkpoint rates,
/// replay volume, torn-tail truncations, and the fdatasync latency the
/// group-commit window amortizes.
struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* syncs;
  obs::Counter* checkpoints;
  obs::Counter* replayed_records;
  obs::Counter* truncated_bytes;
  obs::Histogram* sync_seconds;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      WalMetrics m;
      m.appends = registry.counter("rcj_wal_appends_total");
      m.syncs = registry.counter("rcj_wal_syncs_total");
      m.checkpoints = registry.counter("rcj_wal_checkpoints_total");
      m.replayed_records = registry.counter("rcj_wal_replayed_records_total");
      m.truncated_bytes = registry.counter("rcj_wal_truncated_bytes_total");
      m.sync_seconds = registry.histogram("rcj_wal_sync_seconds");
      return m;
    }();
    return metrics;
  }
};

// ---- fixed-width little-endian encoding --------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

double GetF64(const char* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---- journal record framing --------------------------------------------

/// epoch(8) + op(1) + side(1) + id(8) + x(8) + y(8).
constexpr size_t kPayloadLen = 34;
constexpr size_t kHeaderLen = 8;  ///< len(4) + masked crc(4).

std::string EncodeRecord(const WalRecord& record) {
  std::string payload;
  payload.reserve(kPayloadLen);
  PutU64(&payload, record.epoch);
  payload.push_back(static_cast<char>(record.op));
  payload.push_back(static_cast<char>(record.side == LiveSide::kQ ? 0 : 1));
  PutU64(&payload, static_cast<uint64_t>(record.rec.id));
  PutF64(&payload, record.rec.pt.x);
  PutF64(&payload, record.rec.pt.y);

  std::string out;
  out.reserve(kHeaderLen + kPayloadLen);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, crc32c::Mask(crc32c::Value(payload.data(), payload.size())));
  out += payload;
  return out;
}

bool DecodePayload(const char* p, WalRecord* out) {
  out->epoch = GetU64(p);
  const unsigned char op = static_cast<unsigned char>(p[8]);
  const unsigned char side = static_cast<unsigned char>(p[9]);
  if (op > 1 || side > 1) return false;
  out->op = static_cast<WalOp>(op);
  out->side = side == 0 ? LiveSide::kQ : LiveSide::kP;
  out->rec.id = static_cast<PointId>(GetU64(p + 10));
  out->rec.pt.x = GetF64(p + 18);
  out->rec.pt.y = GetF64(p + 26);
  return true;
}

// ---- base snapshot format ----------------------------------------------

/// magic(8) + body_len(8) + masked crc(4) + pad(4), then the body:
/// epoch(8) + self_join(1) + pad(7) + nq(8) + np(8) + points.
constexpr char kSnapMagic[8] = {'R', 'J', 'S', 'N', 'A', 'P', '0', '1'};
constexpr size_t kSnapHeaderLen = 24;

void PutPointset(std::string* out, const std::vector<PointRecord>& set) {
  for (const PointRecord& rec : set) {
    PutU64(out, static_cast<uint64_t>(rec.id));
    PutF64(out, rec.pt.x);
    PutF64(out, rec.pt.y);
  }
}

std::string EncodeSnapshot(uint64_t epoch, bool self_join,
                           const std::vector<PointRecord>& base_q,
                           const std::vector<PointRecord>& base_p) {
  std::string body;
  body.reserve(32 + 24 * (base_q.size() + base_p.size()));
  PutU64(&body, epoch);
  body.push_back(self_join ? 1 : 0);
  body.append(7, '\0');
  PutU64(&body, base_q.size());
  PutU64(&body, base_p.size());
  PutPointset(&body, base_q);
  PutPointset(&body, base_p);

  std::string out;
  out.reserve(kSnapHeaderLen + body.size());
  out.append(kSnapMagic, sizeof(kSnapMagic));
  PutU64(&out, body.size());
  PutU32(&out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  PutU32(&out, 0);
  out += body;
  return out;
}

Status DecodeSnapshot(const std::string& path, const std::string& data,
                      WalRecovery* out) {
  if (data.size() < kSnapHeaderLen ||
      std::memcmp(data.data(), kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Status::Corruption(path + ": not a base snapshot");
  }
  const uint64_t body_len = GetU64(data.data() + 8);
  if (data.size() != kSnapHeaderLen + body_len) {
    return Status::Corruption(path + ": truncated snapshot body");
  }
  const char* body = data.data() + kSnapHeaderLen;
  if (crc32c::Unmask(GetU32(data.data() + 16)) !=
      crc32c::Value(body, body_len)) {
    return Status::Corruption(path + ": snapshot checksum mismatch");
  }
  if (body_len < 32) {
    return Status::Corruption(path + ": snapshot body too small");
  }
  out->snapshot_epoch = GetU64(body);
  out->self_join = body[8] != 0;
  const uint64_t nq = GetU64(body + 16);
  const uint64_t np = GetU64(body + 24);
  if (body_len != 32 + 24 * (nq + np)) {
    return Status::Corruption(path + ": snapshot pointset size mismatch");
  }
  const char* p = body + 32;
  out->base_q.reserve(nq);
  for (uint64_t i = 0; i < nq; ++i, p += 24) {
    PointRecord rec;
    rec.id = static_cast<PointId>(GetU64(p));
    rec.pt.x = GetF64(p + 8);
    rec.pt.y = GetF64(p + 16);
    out->base_q.push_back(rec);
  }
  out->base_p.reserve(np);
  for (uint64_t i = 0; i < np; ++i, p += 24) {
    PointRecord rec;
    rec.id = static_cast<PointId>(GetU64(p));
    rec.pt.x = GetF64(p + 8);
    rec.pt.y = GetF64(p + 16);
    out->base_p.push_back(rec);
  }
  out->has_snapshot = true;
  return Status::OK();
}

// ---- filesystem helpers ------------------------------------------------

Status MkDirs(const std::string& path) {
  std::string prefix;
  size_t start = 0;
  while (start <= path.size()) {
    const size_t slash = path.find('/', start);
    const size_t end = slash == std::string::npos ? path.size() : slash;
    prefix = path.substr(0, end);
    start = end + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + prefix + ": " + std::strerror(errno));
    }
    if (slash == std::string::npos) break;
  }
  return Status::OK();
}

/// Reads the whole file; NotFound when it does not exist.
Status ReadAll(const std::string& path, std::string* out) {
  out->clear();
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path);
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      close(fd);
      return Status::IoError("read " + path + ": " + err);
    }
    if (got == 0) break;
    out->append(buffer, static_cast<size_t>(got));
  }
  close(fd);
  return Status::OK();
}

Status WriteAllFd(int fd, const std::string& path, const std::string& data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t got =
        write(fd, data.data() + written, data.size() - written);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write " + path + ": " + std::strerror(errno));
    }
    written += static_cast<size_t>(got);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " + std::strerror(errno));
  }
  if (fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::IoError("fsync dir " + dir + ": " + err);
  }
  close(fd);
  return Status::OK();
}

/// tmp → write → fsync → rename → dir fsync: the file named `name` is
/// either its previous complete content or the new complete content, at
/// every crash instant.
Status WriteFileAtomic(const std::string& dir, const std::string& name,
                       const std::string& data) {
  const std::string tmp_path = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp_path + ": " + std::strerror(errno));
  }
  Status status = WriteAllFd(fd, tmp_path, data);
  if (status.ok() && fsync(fd) != 0) {
    status = Status::IoError("fsync " + tmp_path + ": " + std::strerror(errno));
  }
  close(fd);
  if (!status.ok()) {
    unlink(tmp_path.c_str());
    return status;
  }
  if (rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    unlink(tmp_path.c_str());
    return Status::IoError("rename " + tmp_path + ": " + err);
  }
  return SyncDir(dir);
}

std::string JournalPath(const std::string& dir) { return dir + "/wal.log"; }
std::string SnapshotPath(const std::string& dir) { return dir + "/base.snap"; }

}  // namespace

MutationLog::MutationLog(MutationLogOptions options)
    : options_(std::move(options)),
      last_sync_(std::chrono::steady_clock::now()) {}

MutationLog::~MutationLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (dirty_) fdatasync(fd_);
    close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<MutationLog>> MutationLog::Open(
    const MutationLogOptions& options, WalRecovery* recovery) {
  *recovery = WalRecovery();
  RINGJOIN_RETURN_IF_ERROR(MkDirs(options.dir));

  // Base snapshot: optional, but if present it must be intact — the
  // tmp/rename protocol guarantees that, so a bad one is real corruption.
  std::string snap;
  Status status = ReadAll(SnapshotPath(options.dir), &snap);
  if (status.ok()) {
    RINGJOIN_RETURN_IF_ERROR(
        DecodeSnapshot(SnapshotPath(options.dir), snap, recovery));
  } else if (status.code() != StatusCode::kNotFound) {
    return status;
  }

  // Journal replay: scan records until the first torn or corrupt one,
  // then truncate the file to the good prefix. A record the last
  // checkpoint already folded (epoch <= snapshot epoch) is skipped —
  // that is the crash-between-renames window, not an error.
  const std::string journal_path = JournalPath(options.dir);
  std::string journal;
  status = ReadAll(journal_path, &journal);
  if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
  size_t offset = 0;
  while (offset < journal.size()) {
    if (journal.size() - offset < kHeaderLen) break;
    const uint32_t len = GetU32(journal.data() + offset);
    if (len != kPayloadLen) break;
    if (journal.size() - offset < kHeaderLen + len) break;
    const char* payload = journal.data() + offset + kHeaderLen;
    if (crc32c::Unmask(GetU32(journal.data() + offset + 4)) !=
        crc32c::Value(payload, len)) {
      break;
    }
    WalRecord record;
    if (!DecodePayload(payload, &record)) break;
    if (record.epoch <= recovery->snapshot_epoch && recovery->has_snapshot) {
      ++recovery->skipped_records;
    } else {
      recovery->records.push_back(record);
    }
    offset += kHeaderLen + len;
  }
  recovery->truncated_bytes = journal.size() - offset;
  if (recovery->truncated_bytes > 0) {
    const int fd = open(journal_path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError("open " + journal_path + ": " +
                             std::strerror(errno));
    }
    if (ftruncate(fd, static_cast<off_t>(offset)) != 0 || fsync(fd) != 0) {
      const std::string err = std::strerror(errno);
      close(fd);
      return Status::IoError("truncate " + journal_path + ": " + err);
    }
    close(fd);
    WalMetrics::Get().truncated_bytes->Add(recovery->truncated_bytes);
  }
  WalMetrics::Get().replayed_records->Add(recovery->records.size());

  std::unique_ptr<MutationLog> log(new MutationLog(options));
  log->fd_ = open(journal_path.c_str(),
                  O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (log->fd_ < 0) {
    return Status::IoError("open " + journal_path + ": " +
                           std::strerror(errno));
  }
  return log;
}

Status MutationLog::Append(const WalRecord& record) {
  RINGJOIN_RETURN_IF_ERROR(RINGJOIN_FAILPOINT("wal_append"));
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Status::IoError("mutation log " + options_.dir +
                           " is wedged after a failed write");
  }
  const std::string encoded = EncodeRecord(record);
  const off_t before = lseek(fd_, 0, SEEK_END);
  Status status = WriteAllFd(fd_, JournalPath(options_.dir), encoded);
  if (status.ok()) {
    dirty_ = true;
    const auto now = std::chrono::steady_clock::now();
    if (options_.sync_interval_ms <= 0 ||
        now - last_sync_ >=
            std::chrono::milliseconds(options_.sync_interval_ms)) {
      status = SyncLocked();
    }
  }
  if (!status.ok()) {
    // Roll the failed record (or its torn prefix) back off the tail so
    // the journal never carries a mutation the environment rejected. If
    // even that fails, poison the log: appending past a torn middle
    // would orphan every later record at replay.
    if (before < 0 || ftruncate(fd_, before) != 0) wedged_ = true;
    return status;
  }
  WalMetrics::Get().appends->Add();
  return Status::OK();
}

Status MutationLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status MutationLog::SyncLocked() {
  if (!dirty_) return Status::OK();
  RINGJOIN_RETURN_IF_ERROR(RINGJOIN_FAILPOINT("wal_sync"));
  const auto start = std::chrono::steady_clock::now();
  if (fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync " + JournalPath(options_.dir) + ": " +
                           std::strerror(errno));
  }
  dirty_ = false;
  last_sync_ = std::chrono::steady_clock::now();
  WalMetrics::Get().syncs->Add();
  WalMetrics::Get().sync_seconds->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::OK();
}

Status MutationLog::Checkpoint(uint64_t folded_epoch, bool self_join,
                               const std::vector<PointRecord>& base_q,
                               const std::vector<PointRecord>& base_p) {
  // Phase 1: persist the folded base. After this rename, replay skips
  // journal records at or below folded_epoch whether or not phase 2 runs.
  RINGJOIN_RETURN_IF_ERROR(WriteFileAtomic(
      options_.dir, "base.snap",
      EncodeSnapshot(folded_epoch, self_join, base_q, base_p)));

  RINGJOIN_RETURN_IF_ERROR(RINGJOIN_FAILPOINT("compact_swap"));

  // Phase 2: filter-rewrite the journal, keeping only the suffix the new
  // snapshot does not cover. Appends block on mu_ meanwhile, so the
  // rewrite sees a stable file and the reopened fd resumes at its tail.
  std::lock_guard<std::mutex> lock(mu_);
  RINGJOIN_RETURN_IF_ERROR(SyncLocked());
  const std::string journal_path = JournalPath(options_.dir);
  std::string journal;
  Status status = ReadAll(journal_path, &journal);
  if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
  std::string kept;
  size_t offset = 0;
  while (journal.size() - offset >= kHeaderLen) {
    const uint32_t len = GetU32(journal.data() + offset);
    if (len != kPayloadLen || journal.size() - offset < kHeaderLen + len) {
      break;
    }
    const char* payload = journal.data() + offset + kHeaderLen;
    if (crc32c::Unmask(GetU32(journal.data() + offset + 4)) !=
        crc32c::Value(payload, len)) {
      break;
    }
    if (GetU64(payload) > folded_epoch) {
      kept.append(journal, offset, kHeaderLen + len);
    }
    offset += kHeaderLen + len;
  }
  RINGJOIN_RETURN_IF_ERROR(WriteFileAtomic(options_.dir, "wal.log", kept));
  // The append fd still points at the old (now unlinked) inode; reopen.
  if (fd_ >= 0) close(fd_);
  fd_ = open(journal_path.c_str(),
             O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    wedged_ = true;
    return Status::IoError("reopen " + journal_path + ": " +
                           std::strerror(errno));
  }
  dirty_ = false;
  WalMetrics::Get().checkpoints->Add();
  return Status::OK();
}

}  // namespace rcj
