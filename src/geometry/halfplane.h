// The pruning half-planes of the paper's Lemmas 1, 3 and 5.
//
// Given a query point q and an "anchor" point a (a previously discovered
// point of P for Lemma 1, or a sibling point of Q for Lemma 5), let L(q, a)
// be the line through a perpendicular to segment qa. The plane splits into
//   Psi+ (contains q)  and  Psi- (beyond a, away from q).
// No point in the *open* region Psi-(q, a) can form an RCJ pair with q.
// The region is open because a point exactly on L(q, a) yields a circle with
// the anchor exactly on its boundary, which under the open-disk convention
// does not invalidate the pair (see DESIGN.md).
#ifndef RINGJOIN_GEOMETRY_HALFPLANE_H_
#define RINGJOIN_GEOMETRY_HALFPLANE_H_

#include "geometry/point.h"
#include "geometry/rect.h"

namespace rcj {

/// The pruning half-plane Psi-(q, anchor) of Lemma 1 / Lemma 5.
/// Construct once per (q, anchor) pair; testing a point is one dot product.
class PruneRegion {
 public:
  /// Requires q != anchor (a zero normal prunes nothing, which is safe but
  /// useless; callers never pass q == anchor).
  PruneRegion(const Point& q, const Point& anchor)
      : anchor_(anchor), nx_(anchor.x - q.x), ny_(anchor.y - q.y) {}

  /// Lemma 1 / Lemma 5: true iff x lies strictly in Psi-(q, anchor), i.e.
  /// x cannot join with q.
  bool PrunesPoint(const Point& x) const {
    return (x.x - anchor_.x) * nx_ + (x.y - anchor_.y) * ny_ > 0.0;
  }

  /// Lemma 3: true iff the whole rectangle lies strictly in Psi-(q, anchor),
  /// i.e. no point in the subtree under MBR r can join with q. The signed
  /// offset is linear, so its minimum over r is attained at one corner,
  /// chosen per axis by the sign of the normal.
  bool PrunesRect(const Rect& r) const {
    const double cx = nx_ > 0.0 ? r.lo.x : r.hi.x;
    const double cy = ny_ > 0.0 ? r.lo.y : r.hi.y;
    return (cx - anchor_.x) * nx_ + (cy - anchor_.y) * ny_ > 0.0;
  }

  const Point& anchor() const { return anchor_; }

 private:
  Point anchor_;
  // Outward normal of L(q, anchor): direction from q to the anchor.
  double nx_;
  double ny_;
};

}  // namespace rcj

#endif  // RINGJOIN_GEOMETRY_HALFPLANE_H_
