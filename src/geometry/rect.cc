#include "geometry/rect.h"

namespace rcj {

Point Rect::Corner(int i) const {
  switch (i & 3) {
    case 0:
      return lo;
    case 1:
      return Point{hi.x, lo.y};
    case 2:
      return hi;
    default:
      return Point{lo.x, hi.y};
  }
}

double Rect::OverlapArea(const Rect& r) const {
  const double w =
      std::min(hi.x, r.hi.x) - std::max(lo.x, r.lo.x);
  if (w <= 0.0) return 0.0;
  const double h =
      std::min(hi.y, r.hi.y) - std::max(lo.y, r.lo.y);
  if (h <= 0.0) return 0.0;
  return w * h;
}

double Rect::MinDist2(const Point& p) const {
  double dx = 0.0;
  if (p.x < lo.x) {
    dx = lo.x - p.x;
  } else if (p.x > hi.x) {
    dx = p.x - hi.x;
  }
  double dy = 0.0;
  if (p.y < lo.y) {
    dy = lo.y - p.y;
  } else if (p.y > hi.y) {
    dy = p.y - hi.y;
  }
  return dx * dx + dy * dy;
}

double Rect::MaxDist2(const Point& p) const {
  const double dx = std::max(std::fabs(p.x - lo.x), std::fabs(p.x - hi.x));
  const double dy = std::max(std::fabs(p.y - lo.y), std::fabs(p.y - hi.y));
  return dx * dx + dy * dy;
}

double MinDist2(const Rect& a, const Rect& b) {
  double dx = 0.0;
  if (a.hi.x < b.lo.x) {
    dx = b.lo.x - a.hi.x;
  } else if (b.hi.x < a.lo.x) {
    dx = a.lo.x - b.hi.x;
  }
  double dy = 0.0;
  if (a.hi.y < b.lo.y) {
    dy = b.lo.y - a.hi.y;
  } else if (b.hi.y < a.lo.y) {
    dy = a.lo.y - b.hi.y;
  }
  return dx * dx + dy * dy;
}

}  // namespace rcj
