// Axis-aligned rectangles (minimum bounding rectangles) and the MBR algebra
// needed by the R*-tree: area/margin/overlap for the split heuristics and
// mindist for best-first search (Roussopoulos et al.).
#ifndef RINGJOIN_GEOMETRY_RECT_H_
#define RINGJOIN_GEOMETRY_RECT_H_

#include <algorithm>
#include <limits>

#include "geometry/point.h"

namespace rcj {

/// A closed axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y].
/// An "empty" rectangle (from Rect::Empty()) has inverted bounds and acts as
/// the identity for Expand().
struct Rect {
  Point lo{0.0, 0.0};
  Point hi{0.0, 0.0};

  /// The empty rectangle: identity element for Expand / ExpandRect.
  static Rect Empty() {
    const double inf = std::numeric_limits<double>::infinity();
    return Rect{Point{inf, inf}, Point{-inf, -inf}};
  }

  /// A degenerate rectangle covering exactly one point.
  static Rect FromPoint(const Point& p) { return Rect{p, p}; }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// Closed containment of a point.
  bool Contains(const Point& p) const {
    return lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y;
  }

  /// Closed containment of another rectangle.
  bool ContainsRect(const Rect& r) const {
    return lo.x <= r.lo.x && r.hi.x <= hi.x && lo.y <= r.lo.y && r.hi.y <= hi.y;
  }

  /// Closed intersection test.
  bool Intersects(const Rect& r) const {
    return lo.x <= r.hi.x && r.lo.x <= hi.x && lo.y <= r.hi.y && r.lo.y <= hi.y;
  }

  /// Grows this rectangle to cover point p.
  void Expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grows this rectangle to cover rectangle r.
  void ExpandRect(const Rect& r) {
    if (r.IsEmpty()) return;
    Expand(r.lo);
    Expand(r.hi);
  }

  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }

  /// Area; 0 for empty or degenerate rectangles.
  double Area() const {
    if (IsEmpty()) return 0.0;
    return Width() * Height();
  }

  /// Half-perimeter, the R*-tree "margin" goodness measure.
  double Margin() const {
    if (IsEmpty()) return 0.0;
    return Width() + Height();
  }

  Point Center() const {
    return Point{0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y)};
  }

  /// Corner i in cyclic order: 0=(lo,lo), 1=(hi,lo), 2=(hi,hi), 3=(lo,hi).
  /// Cyclic adjacency matters for the face-inside-circle test.
  Point Corner(int i) const;

  /// Area of the intersection with r (0 if disjoint).
  double OverlapArea(const Rect& r) const;

  /// Squared Euclidean mindist from point p to this rectangle (0 if inside).
  double MinDist2(const Point& p) const;

  /// Squared Euclidean distance from p to the farthest point of the
  /// rectangle.
  double MaxDist2(const Point& p) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Smallest rectangle covering both a and b.
inline Rect Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExpandRect(b);
  return out;
}

/// Increase in area caused by growing `base` to cover `add`.
inline double Enlargement(const Rect& base, const Rect& add) {
  return Union(base, add).Area() - base.Area();
}

/// Squared Euclidean mindist between two rectangles (0 if they intersect).
/// Used by the synchronized-traversal join baselines.
double MinDist2(const Rect& a, const Rect& b);

}  // namespace rcj

#endif  // RINGJOIN_GEOMETRY_RECT_H_
