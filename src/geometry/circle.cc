// Circle is header-only; this translation unit exists so the module has a
// home for future non-inline helpers and keeps the build graph uniform.
#include "geometry/circle.h"

namespace rcj {}  // namespace rcj
