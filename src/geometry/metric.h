// Distance-metric generalization used by the extensions module (the paper's
// Section 6 future-work item: ring constraints under non-Euclidean metrics).
#ifndef RINGJOIN_GEOMETRY_METRIC_H_
#define RINGJOIN_GEOMETRY_METRIC_H_

#include "geometry/point.h"

namespace rcj {

/// Supported Minkowski metrics for the generalized ring constraint.
enum class Metric {
  kL1,    ///< Manhattan; the "ball" is a diamond.
  kL2,    ///< Euclidean; the classic RCJ of the paper.
  kLInf,  ///< Chebyshev; the ball is an axis-aligned square.
};

/// Distance between a and b under the chosen metric.
inline double MetricDist(Metric m, const Point& a, const Point& b) {
  switch (m) {
    case Metric::kL1:
      return DistL1(a, b);
    case Metric::kLInf:
      return DistLInf(a, b);
    case Metric::kL2:
    default:
      return Dist(a, b);
  }
}

}  // namespace rcj

#endif  // RINGJOIN_GEOMETRY_METRIC_H_
