// 2-D point primitives. All geometry in ringjoin is planar, matching the
// paper's setting; coordinates are doubles in an arbitrary domain (the
// experiments normalize to [0, 10000]^2).
#ifndef RINGJOIN_GEOMETRY_POINT_H_
#define RINGJOIN_GEOMETRY_POINT_H_

#include <cmath>
#include <cstdint>

namespace rcj {

/// A point in the plane.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
};

/// Squared Euclidean distance. Preferred in all correctness-critical
/// comparisons: it avoids the sqrt rounding step, so the filter, the
/// verifier, the brute-force oracle, and the Gabriel oracle all evaluate the
/// exact same floating-point expression.
inline double Dist2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance (for reporting and heap keys, not for predicates).
inline double Dist(const Point& a, const Point& b) {
  return std::sqrt(Dist2(a, b));
}

/// Manhattan (L1) distance.
inline double DistL1(const Point& a, const Point& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

/// Chebyshev (L-infinity) distance.
inline double DistLInf(const Point& a, const Point& b) {
  return std::fmax(std::fabs(a.x - b.x), std::fabs(a.y - b.y));
}

/// Midpoint of the segment ab; the center of the smallest enclosing circle
/// of {a, b} (paper Section 1: the "fair middleman" location).
inline Point Midpoint(const Point& a, const Point& b) {
  return Point{0.5 * (a.x + b.x), 0.5 * (a.y + b.y)};
}

/// Dot product of vectors (a - o) and (b - o).
inline double DotFrom(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.x - o.x) + (a.y - o.y) * (b.y - o.y);
}

/// Identifier of a point within its dataset. Ids are unique within one
/// dataset; P and Q have independent id spaces.
using PointId = std::int64_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPointId = -1;

/// A point together with its dataset identifier — the unit stored in R-tree
/// leaves and reported in join results.
struct PointRecord {
  Point pt;
  PointId id = kInvalidPointId;

  friend bool operator==(const PointRecord& a, const PointRecord& b) {
    return a.id == b.id && a.pt == b.pt;
  }
};

}  // namespace rcj

#endif  // RINGJOIN_GEOMETRY_POINT_H_
