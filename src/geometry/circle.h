// The ring constraint's geometric object: the smallest circle enclosing a
// candidate pair <p, q>, plus the circle/rectangle predicates used by the
// verification step (paper Section 3.2).
//
// Containment convention (see DESIGN.md): a pair is invalidated only by a
// point *strictly inside* its circle. All predicates below are therefore
// strict ("open disk"), which makes Lemmas 1-5 exactly sound and keeps every
// algorithm (filter, verify, brute force, Gabriel oracle) consistent.
#ifndef RINGJOIN_GEOMETRY_CIRCLE_H_
#define RINGJOIN_GEOMETRY_CIRCLE_H_

#include <cmath>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace rcj {

/// A circle stored as center + squared radius. The squared radius is the
/// canonical representation: every predicate compares squared distances so
/// no sqrt is taken in correctness-critical paths.
struct Circle {
  Point center;
  double radius2 = 0.0;

  /// The smallest circle enclosing points a and b: centered at their
  /// midpoint with diameter dist(a, b). This is the circle of paper Fig. 1.
  static Circle Enclosing(const Point& a, const Point& b) {
    return Circle{Midpoint(a, b), 0.25 * Dist2(a, b)};
  }

  double Radius() const { return std::sqrt(radius2); }
  double Diameter() const { return 2.0 * Radius(); }

  /// True iff p lies strictly inside the circle (open disk).
  bool ContainsStrict(const Point& p) const {
    return Dist2(p, center) < radius2;
  }

  /// True iff the closed rectangle r intersects the open disk, i.e. the
  /// subtree under MBR r *may* contain a point that invalidates the pair.
  bool IntersectsRect(const Rect& r) const {
    return r.MinDist2(center) < radius2;
  }

  /// True iff the whole rectangle lies strictly inside the open disk.
  bool ContainsRectStrict(const Rect& r) const {
    return r.MaxDist2(center) < radius2;
  }

  /// True iff some face (side) of rectangle r lies strictly inside the open
  /// disk. By the MBR property every face of an R-tree node MBR touches at
  /// least one data point of its subtree, so a face strictly inside the
  /// circle certifies an invalidating point without descending into the
  /// subtree (paper Fig. 7d). A disk is convex, so a segment is strictly
  /// inside iff both endpoints are.
  bool ContainsRectFaceStrict(const Rect& r) const {
    bool inside[4];
    for (int i = 0; i < 4; ++i) inside[i] = ContainsStrict(r.Corner(i));
    for (int i = 0; i < 4; ++i) {
      if (inside[i] && inside[(i + 1) & 3]) return true;
    }
    return false;
  }
};

/// The exact pair-circle containment predicate: o lies strictly inside the
/// open disk with diameter ab iff the angle a-o-b is obtuse, i.e.
/// dot(a - o, b - o) < 0 (Thales). Unlike the center/radius form this
/// involves no midpoint rounding, so the diameter endpoints themselves
/// evaluate to exactly 0 (never "inside"), and it is bit-for-bit consistent
/// with the half-plane pruning tests of Lemmas 1/3/5 (which evaluate the
/// negation of the same expression). Every correctness-critical containment
/// check in the library (brute force, verification, Gabriel oracle) uses
/// this predicate; Circle::ContainsStrict is kept for generic circle range
/// queries and conservative traversal bounds.
inline bool StrictlyInsideDiametral(const Point& o, const Point& a,
                                    const Point& b) {
  return DotFrom(o, a, b) < 0.0;
}

/// Face rule in the exact diametral form: true iff some face (side) of r
/// lies strictly inside the open disk with diameter ab (both adjacent
/// corners strictly inside; disks are convex).
inline bool DiametralContainsRectFace(const Point& a, const Point& b,
                                      const Rect& r) {
  bool inside[4];
  for (int i = 0; i < 4; ++i) {
    inside[i] = StrictlyInsideDiametral(r.Corner(i), a, b);
  }
  for (int i = 0; i < 4; ++i) {
    if (inside[i] && inside[(i + 1) & 3]) return true;
  }
  return false;
}

}  // namespace rcj

#endif  // RINGJOIN_GEOMETRY_CIRCLE_H_
